//===-- core/Report.h - Compilation analysis reports ------------*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable analysis reports: what the coalescing checker saw, what
/// the sharing analysis planned, how the design space ranked, and where
/// the chosen kernel's simulated traffic goes. The paper positions the
/// compiler as a tool "useful for performance analysis and algorithm
/// refinement" — this is that surface, used by the gpucc driver's
/// --report flag and available programmatically.
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_CORE_REPORT_H
#define GPUC_CORE_REPORT_H

#include "core/Compiler.h"

#include <string>

namespace gpuc {

/// Per-access coalescing verdicts of \p K under its current launch.
std::string coalescingReport(KernelFunction &K);

/// The merge plan and camping outcome of a compilation.
std::string planReport(const CompileOutput &Out);

/// The explored design space, one line per variant. Distinguishes
/// measured, pruned (lower bound), infeasible (with the limiting
/// resource) and failed variants.
std::string designSpaceReport(const CompileOutput &Out);

/// Search counters: lanes, candidates, simulations vs. probes vs. pruned,
/// cache traffic, scalar-engine fallbacks and wall-clock (gpucc
/// --search-stats). The SearchStats overload serves program-level
/// aggregates (compileProgram) with the same format.
std::string searchStatsReport(const CompileOutput &Out);
std::string searchStatsReport(const SearchStats &S);

/// The fusion legality verdict, placements and fused-vs-unfused decision
/// of a pipeline compilation (gpucc --report on multi-kernel inputs).
std::string fusionReport(const ProgramCompileOutput &Out);

/// Simulated traffic by access expression plus occupancy for \p K on
/// \p Device (runs the performance simulator with site tracking).
std::string trafficReport(const KernelFunction &K, const DeviceSpec &Device);

/// All of the above for a finished compilation.
std::string fullReport(KernelFunction &Naive, const CompileOutput &Out,
                       const DeviceSpec &Device);

} // namespace gpuc

#endif // GPUC_CORE_REPORT_H

//===-- core/Fusion.h - Kernel fusion for pipelines -------------*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Producer/consumer kernel fusion for multi-kernel pipelines (Filipovič
/// et al., "Optimizing CUDA Code By Kernel Fusion"): the producer's body
/// is inlined into the consumer so the intermediate array never round-trips
/// through global memory. Two placements:
///
///  * Register — the consumer reads the intermediate only at its own
///    element position, so each thread keeps the producer's value in a
///    local (a register). Always legal for element-wise dataflow.
///  * SharedStage — a 1-D consumer reads the intermediate at constant
///    offsets around its position (the paper's overlapping-segment
///    pattern), so the producer's values for the block's segment plus halo
///    are staged into shared memory behind a __syncthreads() barrier,
///    provided the tile fits the device's shared-memory budget.
///
/// Anything else — above all a consumer whose read position depends on a
/// loop variable (e.g. the mv dot-product reading every element of the
/// intermediate) — is rejected: fusing it would need an inter-block
/// barrier the model does not have.
///
/// Fused and unfused programs are bit-identical on the final stage's
/// outputs: the fused kernel evaluates the exact float expression trees of
/// the unfused stages at the exact same element positions, in the same
/// order (see DESIGN.md §15).
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_CORE_FUSION_H
#define GPUC_CORE_FUSION_H

#include "ast/Kernel.h"
#include "sim/DeviceSpec.h"

#include <string>
#include <vector>

namespace gpuc {

/// Where a fused intermediate lives.
enum class FusePlacement { None, Register, SharedStage };

const char *fusePlacementName(FusePlacement P);

/// Verdict of the fusion legality analysis for one producer/consumer pair.
struct FusionDecision {
  bool Legal = false;
  FusePlacement Placement = FusePlacement::None;
  /// The intermediate array (producer output = consumer input).
  std::string Intermediate;
  /// Why the pair is illegal, or a short note on the placement.
  std::string Reason;
  /// SharedStage only: staged tile bytes per block and the halo extent
  /// (inclusive offsets relative to the element position).
  long long StagingBytes = 0;
  int HaloLo = 0;
  int HaloHi = 0;
};

/// Decides whether \p Consumer can absorb \p Producer and how the
/// intermediate would be placed. Pure analysis; mutates nothing.
FusionDecision analyzeFusion(const KernelFunction &Producer,
                             const KernelFunction &Consumer,
                             const DeviceSpec &Dev);

/// Builds the fused kernel in \p M under \p FusedName per a Legal
/// \p Decision. The inputs are untouched; the result carries the
/// consumer's work domain, outputs and a naive default launch.
/// \returns null only if \p Decision is not legal.
KernelFunction *fuseKernels(Module &M, const KernelFunction &Producer,
                            const KernelFunction &Consumer,
                            const FusionDecision &Decision,
                            const std::string &FusedName);

/// Outcome of fusing a whole pipeline (left fold over the stages).
struct PipelineFusion {
  /// True when every adjacent pair fused (all-or-nothing).
  bool Legal = false;
  /// First failing step's reason when !Legal.
  std::string Reason;
  /// Per-step decisions, in stage order (Steps[i] fuses the accumulated
  /// prefix with stage i+1); stops at the first illegal step.
  std::vector<FusionDecision> Steps;
  /// The fully fused kernel (owned by the Module passed in); null when
  /// !Legal.
  KernelFunction *Fused = nullptr;
  /// True when any step staged its intermediate through shared memory
  /// (the caller pins merge factors for such kernels).
  bool UsedSharedStage = false;
};

/// Fuses \p Stages (pipeline order, ≥ 2) into one kernel in \p M.
/// All-or-nothing: if any adjacent pair is illegal the pipeline stays
/// unfused and Reason says why.
PipelineFusion fusePipeline(Module &M,
                            const std::vector<const KernelFunction *> &Stages,
                            const DeviceSpec &Dev,
                            const std::string &FusedName);

} // namespace gpuc

#endif // GPUC_CORE_FUSION_H

//===-- core/Accesses.h - Global access collection --------------*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Collects every global-memory array access of a kernel together with its
/// linearized byte-address affine form and its enclosing loop nest — the
/// inputs to the coalescing checker (Section 3.2), data-sharing analysis
/// (Section 3.4) and partition-camping detection (Section 3.7).
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_CORE_ACCESSES_H
#define GPUC_CORE_ACCESSES_H

#include "ast/Affine.h"

#include <vector>

namespace gpuc {

/// Compile-time description of one loop enclosing an access.
struct LoopInfo {
  ForStmt *Loop = nullptr;
  /// Constant init/bound/step when resolvable (Resolved == true).
  bool Resolved = false;
  long long Init = 0;
  long long Bound = 0; // exclusive for LT loops
  long long Step = 1;
  long long trip() const {
    if (Step <= 0)
      return 0;
    long long Span = Bound - Init;
    return Span <= 0 ? 0 : (Span + Step - 1) / Step;
  }
};

/// One global array access with its address model.
struct AccessInfo {
  ArrayRef *Ref = nullptr;
  const ParamDecl *Param = nullptr;
  /// The statement the access appears in.
  Stmt *Owner = nullptr;
  bool IsStore = false;
  /// Enclosing loops, outermost first.
  std::vector<LoopInfo> Loops;
  /// Linearized byte address. Valid only when Resolved.
  AffineExpr Addr;
  bool Resolved = false;
  /// Element size in bytes of one access (4 for float, 8 for float2...).
  int ElemBytes = 4;
  /// Per-subscript affine forms, one per dimension (element units).
  std::vector<AffineExpr> DimAffine;

  /// Loop info (from this access's nest) for iterator \p Name, or null.
  const LoopInfo *loopNamed(const std::string &Name) const {
    for (const LoopInfo &L : Loops)
      if (L.Loop->iterName() == Name)
        return &L;
    return nullptr;
  }
};

/// Collects all global accesses of \p K (launch configuration is used to
/// expand idx/idy, so call it after setting the launch).
std::vector<AccessInfo> collectGlobalAccesses(KernelFunction &K);

/// Resolves a loop's bounds against compile-time bindings.
LoopInfo resolveLoop(ForStmt *F, const KernelFunction &K);

} // namespace gpuc

#endif // GPUC_CORE_ACCESSES_H

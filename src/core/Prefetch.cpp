//===-- core/Prefetch.cpp - Data prefetching ------------------------------===//

#include "core/Prefetch.h"

#include "ast/Clone.h"
#include "ast/Subst.h"
#include "ast/Walk.h"
#include "sim/Occupancy.h"

using namespace gpuc;

namespace {

/// A staging store eligible for prefetching: `shared[...] = global[...]`
/// directly in a loop body, with the loop iterator in the source index.
struct PrefetchSite {
  ForStmt *Loop = nullptr;
  size_t StoreIndex = 0;
  AssignStmt *Store = nullptr;
  /// Redundancy guard the store sits under (block merge, Figure 5).
  Expr *GuardCond = nullptr;
};

} // namespace

int gpuc::insertPrefetch(KernelFunction &K, ASTContext &Ctx) {
  if (estimateRegistersPerThread(K) > PrefetchRegisterBudget)
    return 0;

  std::vector<PrefetchSite> Sites;
  forEachStmt(K.body(), [&](Stmt *S) {
    auto *F = dyn_cast<ForStmt>(S);
    if (!F)
      return;
    // Walk direct children (including one guard level, Figure 5 shape).
    auto Candidate = [&](Stmt *S, size_t TopIndex, Expr *GuardCond) {
      auto *A = dyn_cast<AssignStmt>(S);
      if (!A || A->op() != AssignOp::Assign)
        return;
      auto *LHS = dyn_cast<ArrayRef>(A->lhs());
      auto *RHS = dyn_cast<ArrayRef>(A->rhs());
      if (!LHS || !RHS)
        return;
      bool LhsShared = K.findParam(LHS->base()) == nullptr;
      bool RhsGlobal = K.findParam(RHS->base()) != nullptr;
      if (!LhsShared || !RhsGlobal)
        return;
      if (!containsVar(RHS, F->iterName()))
        return;
      Sites.push_back({F, TopIndex, A, GuardCond});
    };
    CompoundStmt *Body = F->body();
    for (size_t I = 0; I < Body->body().size(); ++I) {
      Stmt *Child = Body->body()[I];
      // The store may sit under a block-merge redundancy guard (Figure 5).
      if (auto *If = dyn_cast<IfStmt>(Child)) {
        for (Stmt *Inner : If->thenBody()->body())
          Candidate(Inner, I, If->cond());
      } else {
        Candidate(Child, I, nullptr);
      }
    }
  });

  int Inserted = 0;
  for (const PrefetchSite &Site : Sites) {
    ForStmt *F = Site.Loop;
    // tmp = src(i = init), before the loop.
    size_t LoopIdx = 0;
    CompoundStmt *LoopParent = nullptr;
    forEachStmt(K.body(), [&](Stmt *S) {
      if (auto *C = dyn_cast<CompoundStmt>(S)) {
        for (size_t I = 0; I < C->body().size(); ++I)
          if (C->body()[I] == F) {
            LoopParent = C;
            LoopIdx = I;
          }
      }
    });
    if (!LoopParent)
      continue;

    std::string Tmp = Ctx.freshName("pref");
    Expr *FirstSrc = substVarInExpr(
        Ctx, cloneExpr(Ctx, Site.Store->rhs()), F->iterName(),
        cloneExpr(Ctx, F->init()));
    // The initial load must respect the store's redundancy guard (and a
    // possibly zero-trip loop), so it is emitted as a guarded assignment.
    Expr *FirstGuard = Ctx.lt(cloneExpr(Ctx, F->init()),
                              cloneExpr(Ctx, F->bound()));
    if (Site.GuardCond)
      FirstGuard = Ctx.land(cloneExpr(Ctx, Site.GuardCond), FirstGuard);
    auto *FirstThen = Ctx.compound();
    FirstThen->append(
        Ctx.assign(Ctx.varRef(Tmp, Type::floatTy()), FirstSrc));
    LoopParent->body().insert(
        LoopParent->body().begin() + static_cast<long>(LoopIdx),
        {Ctx.declScalar(Tmp, Type::floatTy(), Ctx.floatLit(0)),
         Ctx.ifStmt(FirstGuard, FirstThen)});

    // Next-iteration load guarded by the loop bound (Figure 8's check),
    // placed after the first barrier following the store.
    Expr *NextI = Ctx.add(Ctx.varRef(F->iterName(), Type::intTy()),
                          cloneExpr(Ctx, F->step()));
    Expr *NextSrc = substVarInExpr(Ctx, cloneExpr(Ctx, Site.Store->rhs()),
                                   F->iterName(), NextI);
    Expr *Guard = Ctx.lt(cloneExpr(Ctx, NextI), cloneExpr(Ctx, F->bound()));
    if (Site.GuardCond)
      Guard = Ctx.land(cloneExpr(Ctx, Site.GuardCond), Guard);
    auto *Then = Ctx.compound();
    Then->append(Ctx.assign(Ctx.varRef(Tmp, Type::floatTy()), NextSrc));
    auto *PrefIf = Ctx.ifStmt(Guard, Then);

    // Rewrite the staging store to consume the temporary.
    Site.Store->setRHS(Ctx.varRef(Tmp, Type::floatTy()));

    CompoundStmt *Body = F->body();
    size_t SyncIdx = Body->body().size();
    for (size_t I = Site.StoreIndex; I < Body->body().size(); ++I) {
      if (auto *Sync = dyn_cast<SyncStmt>(Body->body()[I])) {
        (void)Sync;
        SyncIdx = I + 1;
        break;
      }
    }
    Body->body().insert(Body->body().begin() + static_cast<long>(SyncIdx),
                        PrefIf);
    ++Inserted;
  }
  return Inserted;
}

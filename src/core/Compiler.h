//===-- core/Compiler.h - Compilation pipeline ------------------*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end pipeline of Figure 1: vectorization, coalescing check +
/// conversion, data-sharing analysis, thread/thread-block merge, partition-
/// camping elimination and data prefetching, followed by the empirical
/// design-space exploration of Section 4 that test-runs each generated
/// version (on the simulator substrate) and picks the fastest.
///
/// Note on pass order: the paper inserts prefetching before the partition-
/// camping step; this implementation applies the camping address rotation
/// first so that the prefetch temporary clones the already-rotated index
/// (the two are otherwise inconsistent at the rotation wrap-around).
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_CORE_COMPILER_H
#define GPUC_CORE_COMPILER_H

#include "core/AffineLayout.h"
#include "core/DataSharing.h"
#include "core/Fusion.h"
#include "core/PartitionCamp.h"
#include "sim/Simulator.h"
#include "support/Diagnostics.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace gpuc {

class DiskCache;

/// Observer invoked after each pipeline stage of compileVariant with the
/// stage's name and the (mutable) kernel as transformed so far. Installed
/// by the sanitizer layer (analysis/Sanitizer.h) to race-check and lint
/// every intermediate kernel; \p Final is true for the last invocation on
/// a variant, after folding and verification.
using StageHook =
    std::function<void(const char *Stage, KernelFunction &K, bool Final)>;

/// Makes a task-local StageHook reporting into the given engine. Unlike a
/// plain Hook, a factory keeps the design-space search parallel: each
/// search task calls it once with its own DiagnosticsEngine, and the
/// task diagnostics are replayed into the caller's engine in canonical
/// slot order with exact duplicates collapsed — so the diagnostic stream
/// is byte-identical for every lane count.
using StageHookFactory = std::function<StageHook(DiagnosticsEngine &Diags)>;

/// The stage names compileVariant announces to StageHook, in announcement
/// order ("input" first, "final" last; disabled stages are skipped). The
/// fuzz oracle (fuzz/Oracle.h) snapshots the kernel at each announcement
/// and attributes an equivalence failure to the first diverging stage.
const std::vector<const char *> &pipelineStageNames();

/// Pipeline switches; disabling later stages yields the cumulative
/// configurations of the paper's Figure 12 dissection.
struct CompileOptions {
  DeviceSpec Device = DeviceSpec::gtx280();
  bool Vectorize = true;
  bool Coalesce = true;
  bool Merge = true;
  bool Prefetch = true;
  bool PartitionElim = true;
  /// Search the bounded affine layout family (core/AffineLayout) as an
  /// extra — outermost — dimension of the design space, scoring every
  /// enumerated index-space permutation with the full analytical model
  /// instead of applying the legacy partition-camping heuristic. Off:
  /// candidates run the legacy eliminatePartitionCamping arm (kept for
  /// the bench baseline and Figure 12 dissection). Ignored when
  /// PartitionElim is off. The family is only enumerated when camping is
  /// detected or possible under block merging, so camping-free kernels
  /// search the identity alone and pay nothing.
  bool LayoutSearch = true;
  /// Algebraic cleanup of the emitted code (understandability).
  bool Fold = true;
  /// Re-verify structural invariants after the pipeline (violations are
  /// reported as errors).
  bool Verify = true;
  /// Per-stage observer; null disables it.
  StageHook Hook;
  /// Parallel-safe per-stage observer (see StageHookFactory); preferred
  /// over Hook for the sanitizer layer. Ignored when Hook is set.
  StageHookFactory HookFactory;
  /// Reject search candidates the abstract-interpretation engine
  /// (analysis/Dataflow.h) proves will fault — an out-of-bounds access or
  /// invalid barrier that certainly executes — without probing or
  /// simulating them. A Violation verdict implies the dynamic run could
  /// never have succeeded, so pruning cannot change the winner
  /// (test-enforced); SearchStats::StaticallyPruned counts the skips.
  bool StaticPrune = true;
  /// Lanes for the design-space search (compiling/simulating candidate
  /// variants concurrently). 0 = hardware concurrency, 1 = serial. A
  /// serial search and a parallel one select the same best variant and
  /// produce identical output (see DESIGN.md §4). When Hook is set the
  /// search runs serially regardless: the hook observes every stage of
  /// every variant in a defined order.
  int Jobs = 0;
  /// Simulate every feasible candidate instead of pruning by the cheap
  /// lower-bound probe. Slower; selects the same winner (test-enforced).
  bool ExhaustiveSearch = false;
  /// External memo table for performance runs shared across compilations;
  /// null uses a search-private cache (see sim/SimCache.h).
  SimCache *Cache = nullptr;
  /// Persistent second tier (cache/DiskCache). When set, performance runs
  /// fall through to disk via the SimCache, and the search's winner text
  /// is stored/cross-checked under compileCacheKey. Null disables disk
  /// caching. The cache is bit-transparent: cached and uncached searches
  /// emit identical text and pick identical winners (test-enforced).
  DiskCache *Disk = nullptr;
  /// Sampling profile for the search's full performance runs (candidate
  /// probes always use PerfOptions::lowerBoundProbe()). The default
  /// work-normalized profile keeps heavily merged variants as cheap to
  /// evaluate as naive ones; set Perf.WorkPerBlockRef = 0 to reproduce the
  /// original fixed-count sampling.
  PerfOptions Perf;
  /// Interpreter engine for the search's simulation runs. Scalar and
  /// Vector are bit-identical (test-enforced), so this is excluded from
  /// compileCacheKey; Scalar is the differential oracle / debug path.
  InterpBackend Interp = InterpBackend::Vector;
  /// Cooperative cancellation (the compile daemon's per-request timeout,
  /// serve/Server). When the pointee becomes true the search stops
  /// launching candidate work at the next per-candidate check, the
  /// partial result is discarded (Best stays null, nothing is published
  /// to the disk cache) and compile() returns with "search cancelled" in
  /// the log. Null disables the checks; excluded from compileCacheKey
  /// like the other wiring-only fields.
  const std::atomic<bool> *CancelFlag = nullptr;
};

/// True when \p Opt carries a cancellation flag that is already set.
inline bool compileCancelled(const CompileOptions &Opt) {
  return Opt.CancelFlag && Opt.CancelFlag->load(std::memory_order_relaxed);
}

/// One explored design point (Section 4 / Figure 10).
struct VariantResult {
  KernelFunction *Kernel = nullptr;
  int BlockMergeN = 1;
  int ThreadMergeM = 1;
  /// Affine layout point this variant was compiled with
  /// (LayoutPoint::name(): "identity", "offset", "diagonal", ...).
  const char *Layout = "identity";
  /// Simulated successfully; false for infeasible, pruned and failed runs
  /// (distinguish via LimitedBy / Pruned).
  bool Feasible = false;
  PerfResult Perf;
  /// Occupancy limiter name when the launch does not fit the device
  /// ("threads/SM", "shared memory", ...); null when it fits.
  const char *LimitedBy = nullptr;
  /// Skipped by the search: the cheap lower-bound estimate already
  /// exceeded the champion's measured time.
  bool Pruned = false;
  /// Rejected before any simulation: the dataflow engine proved the
  /// variant executes an out-of-bounds access or an invalid barrier.
  bool StaticallyPruned = false;
  /// The pruning estimate (ms); 0 when no probe ran.
  double LowerBoundMs = 0;
  /// Wall-clock spent compiling / simulating this variant.
  double CompileWallMs = 0;
  double SimWallMs = 0;
  double timeMs() const { return Perf.TimeMs; }
};

/// Counters describing one design-space search (gpucc --search-stats).
struct SearchStats {
  /// Effective lane count used.
  int Jobs = 1;
  int Candidates = 0;
  /// Full performance simulations run.
  int Simulated = 0;
  /// Cheap lower-bound probe simulations run.
  int Probed = 0;
  /// Candidates skipped by the lower-bound threshold.
  int Pruned = 0;
  /// Candidates rejected by the dataflow engine's Violation proof before
  /// any simulation (CompileOptions::StaticPrune).
  int StaticallyPruned = 0;
  int Infeasible = 0;
  /// SimCache traffic attributable to this search: in-memory hits, misses
  /// in both tiers, and memory misses served by the disk tier.
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t DiskHits = 0;
  /// End-to-end search wall-clock.
  double WallMs = 0;
  /// Per-task compile/simulate time SUMMED ACROSS LANES — an aggregate
  /// work measure that exceeds WallMs whenever lanes overlap (never
  /// compare it against wall-clock).
  double CompileMs = 0;
  double SimMs = 0;
  /// Critical-path estimate: the longest single-candidate compile +
  /// simulate chain. A lower bound on any schedule's wall-clock, and the
  /// number to set against WallMs.
  double CritPathMs = 0;
  /// Interpreter runs in this search that asked for the vector engine but
  /// fell back to the scalar walk (shapes the lane engine cannot run; see
  /// sim/Interpreter.h). Counts actual engine executions — runs answered
  /// from the SimCache do not add to it. Excluded from SimStats/PerfResult
  /// so the scalar/vector bit-identity and cache contracts are untouched.
  uint64_t ScalarFallbacks = 0;
  /// Kernel-fusion counters (multi-kernel pipelines; core/Fusion.h):
  /// producer/consumer pairs the legality analysis examined, how many it
  /// proved fusable vs. rejected, and whether the search's winner for the
  /// program was the fused kernel.
  int FusionCandidates = 0;
  int FusionLegal = 0;
  int FusionRejected = 0;
  int FusionWins = 0;
  /// Affine-layout counters (CompileOptions::LayoutSearch): how many
  /// family points this search enumerated (1 = identity only: no camping
  /// anywhere in the candidate set) and whether a non-identity point won.
  int LayoutPoints = 0;
  int LayoutWins = 0;
};

/// Result of a full compilation.
struct CompileOutput {
  KernelFunction *Best = nullptr;
  VariantResult BestVariant;
  std::vector<VariantResult> Variants;
  MergePlan Plan;
  PartitionCampResult Camping;
  std::string Log;
  SearchStats Search;
  /// Modules owning the non-probe variant kernels (each search task
  /// builds its variant in its own Module/ASTContext; keeping them here
  /// keeps every KernelFunction* in Variants alive).
  std::vector<std::shared_ptr<Module>> OwnedModules;
};

/// Result of compiling a multi-kernel pipeline (compileProgram). The
/// fused-vs-unfused choice is itself a dimension of the design-space
/// search: when fusion is legal the fused kernel gets its own full search
/// and the program's winner is whichever side the performance model ranks
/// faster. Both sides stay available for differential testing.
struct ProgramCompileOutput {
  /// Stage names in pipeline order.
  std::vector<std::string> StageNames;
  /// Legality verdict for the whole pipeline (all-or-nothing fold).
  bool FusionLegal = false;
  /// First failing pair's reason when !FusionLegal, empty otherwise.
  std::string FusionReason;
  /// Per-pair decisions in stage order (stops at the first illegal pair).
  std::vector<FusionDecision> FusionSteps;
  /// The fully fused kernel (owned by the compiler's Module); null when
  /// fusion is illegal.
  KernelFunction *Fused = nullptr;
  /// True when the search picked the fused kernel for the program.
  bool UseFused = false;
  /// Full search output for the fused kernel (meaningful iff FusionLegal).
  CompileOutput FusedOut;
  /// Per-stage search outputs for the unfused sequence, in stage order.
  std::vector<CompileOutput> StageOuts;
  /// Modeled times driving the decision: the fused winner vs. the sum of
  /// the unfused stage winners (0 when the respective side is infeasible).
  double FusedMs = 0;
  double UnfusedMs = 0;
  /// The emitted program: a deterministic decision header followed by the
  /// chosen kernel text(s).
  std::string ProgramText;
  /// Counters aggregated over every search run for this program, plus the
  /// fusion counters.
  SearchStats Search;
  /// Every search produced a feasible winner (each unfused stage, and the
  /// fused kernel when legal).
  bool AllFeasible = false;
};

/// Content address of one full design-space search: the naive kernel's
/// alpha-invariant structural hash ⊕ the DeviceSpec ⊕ every pipeline and
/// sampling option that can influence the winner. Lane count, hooks and
/// cache wiring are deliberately excluded — they never change the result
/// (test-enforced), so warm lookups are independent of them.
uint64_t compileCacheKey(const KernelFunction &Naive,
                         const CompileOptions &Opt);

/// Content address of a whole pipeline compile: the ordered fold of every
/// stage's compileCacheKey, salted with the stage count. The fusion
/// analysis and decision are pure functions of the stages + options, so
/// the key does not (and must not) encode them separately.
uint64_t programCacheKey(const std::vector<const KernelFunction *> &Stages,
                         const CompileOptions &Opt);

/// The optimizing compiler.
class GpuCompiler {
public:
  GpuCompiler(Module &M, DiagnosticsEngine &Diags) : M(M), Diags(Diags) {}

  /// Builds one optimized variant with fixed merge factors. \p BlockN and
  /// \p ThreadM of 1 disable the respective merge. When \p Layout is set
  /// the partition-camping stage applies that affine family point
  /// (core/AffineLayout) instead of the legacy heuristic; \p ScanOut, when
  /// set, receives the camping analysis taken at that stage (with the
  /// block-merge scale factors probed), which is what gates the layout
  /// enumeration. \returns null on failure.
  KernelFunction *compileVariant(const KernelFunction &Naive,
                                 const CompileOptions &Opt, int BlockN,
                                 int ThreadM, MergePlan *PlanOut = nullptr,
                                 PartitionCampResult *CampOut = nullptr,
                                 const LayoutPoint *Layout = nullptr,
                                 CampingAnalysis *ScanOut = nullptr);

  /// Full compilation: enumerates merge-factor candidates, test-runs each
  /// version on the simulator (the paper's empirical search) and returns
  /// the fastest feasible one.
  CompileOutput compile(const KernelFunction &Naive,
                        const CompileOptions &Opt = CompileOptions());

  /// Compiles a multi-kernel pipeline (parser order, ≥ 2 stages): runs the
  /// fusion legality analysis, searches the unfused stages individually
  /// and — when fusion is legal — the fused kernel too, then picks the
  /// side the model ranks faster. The winner program text is stored in
  /// the disk cache under programCacheKey (clean compiles only), mirroring
  /// the single-kernel winner store. Fused kernels that stage through
  /// shared memory are searched with merging pinned off: the 16-wide
  /// staging tile encodes the launch geometry the barrier proof relies on.
  ProgramCompileOutput
  compileProgram(const std::vector<const KernelFunction *> &Stages,
                 const CompileOptions &Opt = CompileOptions());

private:
  Module &M;
  DiagnosticsEngine &Diags;
};

} // namespace gpuc

#endif // GPUC_CORE_COMPILER_H

//===-- core/Compiler.h - Compilation pipeline ------------------*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end pipeline of Figure 1: vectorization, coalescing check +
/// conversion, data-sharing analysis, thread/thread-block merge, partition-
/// camping elimination and data prefetching, followed by the empirical
/// design-space exploration of Section 4 that test-runs each generated
/// version (on the simulator substrate) and picks the fastest.
///
/// Note on pass order: the paper inserts prefetching before the partition-
/// camping step; this implementation applies the camping address rotation
/// first so that the prefetch temporary clones the already-rotated index
/// (the two are otherwise inconsistent at the rotation wrap-around).
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_CORE_COMPILER_H
#define GPUC_CORE_COMPILER_H

#include "core/DataSharing.h"
#include "core/PartitionCamp.h"
#include "sim/Simulator.h"
#include "support/Diagnostics.h"

#include <functional>
#include <string>
#include <vector>

namespace gpuc {

/// Observer invoked after each pipeline stage of compileVariant with the
/// stage's name and the (mutable) kernel as transformed so far. Installed
/// by the sanitizer layer (analysis/Sanitizer.h) to race-check and lint
/// every intermediate kernel; \p Final is true for the last invocation on
/// a variant, after folding and verification.
using StageHook =
    std::function<void(const char *Stage, KernelFunction &K, bool Final)>;

/// Pipeline switches; disabling later stages yields the cumulative
/// configurations of the paper's Figure 12 dissection.
struct CompileOptions {
  DeviceSpec Device = DeviceSpec::gtx280();
  bool Vectorize = true;
  bool Coalesce = true;
  bool Merge = true;
  bool Prefetch = true;
  bool PartitionElim = true;
  /// Algebraic cleanup of the emitted code (understandability).
  bool Fold = true;
  /// Re-verify structural invariants after the pipeline (violations are
  /// reported as errors).
  bool Verify = true;
  /// Per-stage observer; null disables it.
  StageHook Hook;
};

/// One explored design point (Section 4 / Figure 10).
struct VariantResult {
  KernelFunction *Kernel = nullptr;
  int BlockMergeN = 1;
  int ThreadMergeM = 1;
  bool Feasible = false;
  PerfResult Perf;
  double timeMs() const { return Perf.TimeMs; }
};

/// Result of a full compilation.
struct CompileOutput {
  KernelFunction *Best = nullptr;
  VariantResult BestVariant;
  std::vector<VariantResult> Variants;
  MergePlan Plan;
  PartitionCampResult Camping;
  std::string Log;
};

/// The optimizing compiler.
class GpuCompiler {
public:
  GpuCompiler(Module &M, DiagnosticsEngine &Diags) : M(M), Diags(Diags) {}

  /// Builds one optimized variant with fixed merge factors. \p BlockN and
  /// \p ThreadM of 1 disable the respective merge. \returns null on
  /// failure.
  KernelFunction *compileVariant(const KernelFunction &Naive,
                                 const CompileOptions &Opt, int BlockN,
                                 int ThreadM, MergePlan *PlanOut = nullptr,
                                 PartitionCampResult *CampOut = nullptr);

  /// Full compilation: enumerates merge-factor candidates, test-runs each
  /// version on the simulator (the paper's empirical search) and returns
  /// the fastest feasible one.
  CompileOutput compile(const KernelFunction &Naive,
                        const CompileOptions &Opt = CompileOptions());

private:
  Module &M;
  DiagnosticsEngine &Diags;
};

} // namespace gpuc

#endif // GPUC_CORE_COMPILER_H

//===-- core/PartitionCamp.h - Partition-camping elimination ----*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.7: detects partition camping — the address stride between
/// neighboring (concurrently active) blocks along X being a multiple of
/// (partition width * number of partitions) — and eliminates it: 1-D grids
/// get a per-block address offset into the reduction dimension (Figure 9),
/// 2-D grids get the diagonal block reordering of [Ruetsch & Micikevicius].
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_CORE_PARTITIONCAMP_H
#define GPUC_CORE_PARTITIONCAMP_H

#include "ast/Kernel.h"
#include "sim/DeviceSpec.h"

namespace gpuc {

/// What the pass did.
struct PartitionCampResult {
  bool Detected = false;
  bool AppliedOffset = false;   // 1-D grid: address-offset insertion
  bool AppliedDiagonal = false; // 2-D grid: block-id remapping
  int CampingAccesses = 0;
};

/// Detects and eliminates partition camping on \p K for \p Device.
PartitionCampResult eliminatePartitionCamping(KernelFunction &K,
                                              ASTContext &Ctx,
                                              const DeviceSpec &Device);

} // namespace gpuc

#endif // GPUC_CORE_PARTITIONCAMP_H

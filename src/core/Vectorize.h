//===-- core/Vectorize.h - float2 vectorization -----------------*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.1: when a statement loads a[2*f+N] and a[2*f+N+1] (N even) —
/// the layout of interleaved complex numbers — the pair becomes one float2
/// load at offset f+N/2 whose .x/.y replace the original accesses. This is
/// the strict rule the paper uses for NVIDIA targets.
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_CORE_VECTORIZE_H
#define GPUC_CORE_VECTORIZE_H

#include "ast/Kernel.h"

namespace gpuc {

/// Applies the float2 pairing rule. \returns number of pairs vectorized.
int vectorizeAccesses(KernelFunction &K, ASTContext &Ctx);

/// The transpose helper of Section 3.3: exchanges idx and idy throughout
/// the kernel (the equivalent of loop interchange), swapping the work
/// domain. Used by the driver when the store is non-coalesced but the
/// exchanged form is.
void exchangeIdxIdy(KernelFunction &K, ASTContext &Ctx);

} // namespace gpuc

#endif // GPUC_CORE_VECTORIZE_H

//===-- core/ThreadMerge.cpp - Thread merge -------------------------------===//

#include "core/ThreadMerge.h"

#include "ast/Clone.h"
#include "ast/Subst.h"
#include "ast/Walk.h"

#include <set>

using namespace gpuc;

namespace {

class ThreadMerger {
public:
  ThreadMerger(KernelFunction &K, ASTContext &Ctx, int M, bool AlongY)
      : K(K), Ctx(Ctx), M(M), AlongY(AlongY),
        Target(AlongY ? BuiltinId::Idy : BuiltinId::Idx) {}

  bool run() {
    LaunchConfig &L = K.launch();
    long long &Grid = AlongY ? L.GridDimY : L.GridDimX;
    if (M <= 1 || Grid % M != 0)
      return false;
    computeTaint();
    rewriteCompound(K.body());
    Grid /= M;
    return true;
  }

private:
  /// The index expression replacing idy (or idx) in replica \p R.
  Expr *replacementFor(int R) {
    const LaunchConfig &L = K.launch();
    int Bd = AlongY ? L.BlockDimY : L.BlockDimX;
    if (Bd == 1) {
      // idy*M + r (Figure 7's shape).
      Expr *E = Ctx.mul(Ctx.builtin(Target), Ctx.intLit(M));
      return Ctx.addConst(E, R);
    }
    // General form: (bid*M + r)*blockDim + tid.
    BuiltinId Bid = AlongY ? BuiltinId::Bidy : BuiltinId::Bidx;
    BuiltinId Tid = AlongY ? BuiltinId::Tidy : BuiltinId::Tidx;
    Expr *Block = Ctx.addConst(Ctx.mul(Ctx.builtin(Bid), Ctx.intLit(M)), R);
    return Ctx.add(Ctx.mul(Block, Ctx.intLit(Bd)), Ctx.builtin(Tid));
  }

  bool exprTainted(const Expr *E) const {
    return anyExprIn(E, [&](const Expr *Sub) {
      if (const auto *B = dyn_cast<BuiltinRef>(Sub))
        return B->id() == Target;
      if (const auto *V = dyn_cast<VarRef>(Sub))
        return Tainted.count(V->name()) > 0;
      if (const auto *A = dyn_cast<ArrayRef>(Sub))
        return Tainted.count(A->base()) > 0;
      return false;
    });
  }

  bool stmtTainted(const Stmt *S) const {
    if (anyExpr(S, [&](const Expr *Sub) {
          if (const auto *B = dyn_cast<BuiltinRef>(Sub))
            return B->id() == Target;
          if (const auto *V = dyn_cast<VarRef>(Sub))
            return Tainted.count(V->name()) > 0;
          if (const auto *A = dyn_cast<ArrayRef>(Sub))
            return Tainted.count(A->base()) > 0;
          return false;
        }))
      return true;
    // Declarations of tainted names must replicate even if their
    // initializer is clean (float sum = 0).
    bool DeclTainted = false;
    forEachStmt(const_cast<Stmt *>(S), [&](Stmt *Child) {
      if (auto *D = dyn_cast<DeclStmt>(Child))
        if (Tainted.count(D->name()))
          DeclTainted = true;
    });
    return DeclTainted;
  }

  /// One taint-propagation round; definitions under direction-dependent
  /// control flow (a tainted if condition or loop bound) are themselves
  /// tainted — they take different values per replica.
  void taintWalkStmt(Stmt *S, bool CtxTainted, bool &Changed) {
    switch (S->kind()) {
    case StmtKind::Compound:
      for (Stmt *Child : cast<CompoundStmt>(S)->body())
        taintWalkStmt(Child, CtxTainted, Changed);
      return;
    case StmtKind::If: {
      auto *If = cast<IfStmt>(S);
      bool C = CtxTainted || exprTainted(If->cond());
      taintWalkStmt(If->thenBody(), C, Changed);
      if (If->elseBody())
        taintWalkStmt(If->elseBody(), C, Changed);
      return;
    }
    case StmtKind::For: {
      auto *F = cast<ForStmt>(S);
      bool C = CtxTainted || exprTainted(F->init()) ||
               exprTainted(F->bound()) || exprTainted(F->step());
      taintWalkStmt(F->body(), C, Changed);
      return;
    }
    case StmtKind::While: {
      auto *W = cast<WhileStmt>(S);
      taintWalkStmt(W->body(), CtxTainted || exprTainted(W->cond()), Changed);
      return;
    }
    case StmtKind::Sync:
      return;
    case StmtKind::Decl:
    case StmtKind::Assign:
      break;
    }
    std::string Def;
    std::vector<const Expr *> Sources;
    if (auto *D = dyn_cast<DeclStmt>(S)) {
      if (D->isShared())
        return; // shared arrays taint through their stores
      Def = D->name();
      if (D->init())
        Sources.push_back(D->init());
    } else if (auto *A = dyn_cast<AssignStmt>(S)) {
      if (auto *V = dyn_cast<VarRef>(A->lhs())) {
        Def = V->name();
      } else if (auto *Arr = dyn_cast<ArrayRef>(A->lhs())) {
        // Only shared arrays live in the taint set; global stores
        // replicate via their index expressions.
        if (!K.findParam(Arr->base()))
          Def = Arr->base();
        for (const Expr *I : Arr->indices())
          Sources.push_back(I);
      } else if (auto *Mem = dyn_cast<Member>(A->lhs())) {
        if (auto *V = dyn_cast<VarRef>(Mem->baseExpr()))
          Def = V->name();
      }
      Sources.push_back(A->rhs());
    }
    if (Def.empty() || Tainted.count(Def))
      return;
    bool Taint = CtxTainted && isa<AssignStmt>(S);
    for (const Expr *Src : Sources)
      if (Src && exprTainted(Src))
        Taint = true;
    if (Taint) {
      Tainted.insert(Def);
      Changed = true;
    }
  }

  void computeTaint() {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      taintWalkStmt(K.body(), /*CtxTainted=*/false, Changed);
    }
  }

  /// Clones \p S for replica \p R: substitutes the merged index and
  /// renames every tainted symbol.
  Stmt *replica(const Stmt *S, int R) {
    Stmt *C = cloneStmt(Ctx, S);
    substBuiltin(Ctx, C, Target, replacementFor(R));
    for (const std::string &Name : Tainted)
      renameVar(C, Name, Name + "_" + std::to_string(R));
    return C;
  }

  /// Hoists direction-invariant global loads of a to-be-replicated
  /// statement into register temporaries (Figure 7's r0).
  void hoistInvariantLoads(AssignStmt *A, std::vector<Stmt *> &Out) {
    std::vector<ArrayRef *> Loads;
    forEachExprIn(A->rhs(), [&](Expr *E) {
      auto *Ref = dyn_cast<ArrayRef>(E);
      if (!Ref)
        return;
      const ParamDecl *P = K.findParam(Ref->base());
      if (!P || !P->IsArray)
        return;
      if (exprTainted(Ref))
        return;
      Loads.push_back(Ref);
    });
    for (ArrayRef *Ref : Loads) {
      std::string Tmp = Ctx.freshName("r");
      Out.push_back(Ctx.declScalar(Tmp, Ref->type(),
                                   cloneExpr(Ctx, Ref)));
      replaceLoad(A, Ref, Ctx.varRef(Tmp, Ref->type()));
    }
  }

  void replaceLoad(AssignStmt *A, const ArrayRef *Old, Expr *New) {
    A->setRHS(rewriteExpr(A->rhs(), [&](Expr *E) -> Expr * {
      return E == Old ? New : nullptr;
    }));
  }

  void rewriteCompound(CompoundStmt *C) {
    std::vector<Stmt *> NewBody;
    for (Stmt *S : C->body()) {
      if (!stmtTainted(S)) {
        // Still recurse: an untainted control statement may guard tainted
        // work... (it cannot, by definition of stmtTainted covering the
        // whole subtree), so keep as-is.
        NewBody.push_back(S);
        continue;
      }
      switch (S->kind()) {
      case StmtKind::For: {
        auto *F = cast<ForStmt>(S);
        bool ControlTainted = exprTainted(F->init()) ||
                              exprTainted(F->bound()) ||
                              exprTainted(F->step());
        if (!ControlTainted) {
          rewriteCompound(F->body());
          NewBody.push_back(S);
        } else {
          for (int R = 0; R < M; ++R)
            NewBody.push_back(replica(S, R));
        }
        break;
      }
      case StmtKind::If: {
        auto *If = cast<IfStmt>(S);
        if (!exprTainted(If->cond())) {
          rewriteCompound(If->thenBody());
          if (If->elseBody())
            rewriteCompound(If->elseBody());
          NewBody.push_back(S);
        } else {
          for (int R = 0; R < M; ++R)
            NewBody.push_back(replica(S, R));
        }
        break;
      }
      case StmtKind::While: {
        auto *W = cast<WhileStmt>(S);
        if (!exprTainted(W->cond())) {
          rewriteCompound(W->body());
          NewBody.push_back(S);
        } else {
          for (int R = 0; R < M; ++R)
            NewBody.push_back(replica(S, R));
        }
        break;
      }
      case StmtKind::Compound:
        rewriteCompound(cast<CompoundStmt>(S));
        NewBody.push_back(S);
        break;
      case StmtKind::Assign: {
        auto *A = cast<AssignStmt>(S);
        hoistInvariantLoads(A, NewBody);
        for (int R = 0; R < M; ++R)
          NewBody.push_back(replica(S, R));
        break;
      }
      case StmtKind::Decl: {
        for (int R = 0; R < M; ++R)
          NewBody.push_back(replica(S, R));
        break;
      }
      case StmtKind::Sync:
        NewBody.push_back(S);
        break;
      }
    }
    C->body() = std::move(NewBody);
  }

  KernelFunction &K;
  ASTContext &Ctx;
  int M;
  bool AlongY;
  BuiltinId Target;
  std::set<std::string> Tainted;
};

} // namespace

bool gpuc::threadMerge(KernelFunction &K, ASTContext &Ctx, int M,
                       bool AlongY) {
  return ThreadMerger(K, Ctx, M, AlongY).run();
}

//===-- core/Report.cpp - Compilation analysis reports --------------------===//

#include "core/Report.h"

#include "ast/Printer.h"
#include "core/Coalescing.h"
#include "support/StringUtils.h"

#include <sstream>

using namespace gpuc;

std::string gpuc::coalescingReport(KernelFunction &K) {
  std::ostringstream OS;
  OS << "== coalescing analysis (" << K.name() << ") ==\n";
  for (const AccessInfo &A : collectGlobalAccesses(K)) {
    CoalesceInfo CI = checkCoalescing(A, K);
    OS << strFormat("  %-6s %-28s %s\n", A.IsStore ? "store" : "load",
                    printExpr(A.Ref).c_str(),
                    coalesceFailureName(CI.Failure));
  }
  return OS.str();
}

std::string gpuc::planReport(const CompileOutput &Out) {
  std::ostringstream OS;
  OS << strFormat("== merge plan ==\n  block-merge X:%d Y:%d  "
                  "thread-merge X:%d Y:%d%s\n",
                  Out.Plan.BlockMergeX, Out.Plan.BlockMergeY,
                  Out.Plan.ThreadMergeX, Out.Plan.ThreadMergeY,
                  Out.Plan.BlockMergeForThreads ? "  (for thread count)"
                                                : "");
  if (Out.Camping.Detected) {
    std::string Outcome = Out.Camping.AppliedDiagonal
                              ? "diagonal block reordering"
                          : Out.Camping.AppliedOffset
                              ? "address offset inserted"
                              : "not eliminable";
    // A layout-search winner can decorrelate with a family point the
    // legacy pass never tried (swap, skew, shift).
    if (Outcome == "not eliminable" && Out.BestVariant.Layout &&
        std::string(Out.BestVariant.Layout) != "identity")
      Outcome = strFormat("%s block remap applied", Out.BestVariant.Layout);
    OS << strFormat("  partition camping: detected, %s\n", Outcome.c_str());
  }
  if (Out.Search.LayoutPoints > 1)
    OS << strFormat("  affine layout: %d point(s) searched, winner %s\n",
                    Out.Search.LayoutPoints,
                    Out.BestVariant.Layout ? Out.BestVariant.Layout
                                           : "identity");
  return OS.str();
}

std::string gpuc::designSpaceReport(const CompileOutput &Out) {
  std::ostringstream OS;
  OS << "== design space ==\n";
  for (const VariantResult &V : Out.Variants) {
    std::string Status;
    if (V.Feasible)
      Status = strFormat("%8.4f ms", V.Perf.TimeMs);
    else if (V.LimitedBy)
      Status = strFormat("infeasible (%s)", V.LimitedBy);
    else if (V.Pruned)
      Status = strFormat("pruned (lower bound %.4f ms)", V.LowerBoundMs);
    else
      Status = "failed";
    std::string LayoutCol =
        Out.Search.LayoutPoints > 1
            ? strFormat("layout=%-9s ", V.Layout ? V.Layout : "identity")
            : std::string();
    OS << strFormat("  %sblocks=%-3d threads=%-3d %s%s\n", LayoutCol.c_str(),
                    V.BlockMergeN, V.ThreadMergeM, Status.c_str(),
                    V.Kernel && V.Kernel == Out.Best ? "  <= selected" : "");
  }
  return OS.str();
}

std::string gpuc::searchStatsReport(const SearchStats &S) {
  std::ostringstream OS;
  OS << "== search stats ==\n";
  OS << strFormat("  jobs=%d  candidates=%d  simulated=%d  probed=%d  "
                  "pruned=%d  statically-pruned=%d  infeasible=%d\n",
                  S.Jobs, S.Candidates, S.Simulated, S.Probed, S.Pruned,
                  S.StaticallyPruned, S.Infeasible);
  OS << strFormat("  sim cache: %llu memory hits, %llu disk hits, "
                  "%llu misses\n",
                  static_cast<unsigned long long>(S.CacheHits),
                  static_cast<unsigned long long>(S.DiskHits),
                  static_cast<unsigned long long>(S.CacheMisses));
  OS << strFormat("  scalar fallbacks: %llu (vector-engine runs executed "
                  "on the scalar walk)\n",
                  static_cast<unsigned long long>(S.ScalarFallbacks));
  if (S.FusionCandidates > 0)
    OS << strFormat("  fusion: %d pair(s) analyzed, %d legal, %d rejected, "
                    "%d win(s)\n",
                    S.FusionCandidates, S.FusionLegal, S.FusionRejected,
                    S.FusionWins);
  if (S.LayoutPoints > 1)
    OS << strFormat("  affine layout: %d point(s) searched, %d win(s)\n",
                    S.LayoutPoints, S.LayoutWins);
  OS << strFormat("  wall %.3f ms, critical path %.3f ms\n", S.WallMs,
                  S.CritPathMs);
  OS << strFormat("  lane-summed aggregates: compile %.3f ms, simulate "
                  "%.3f ms (exceed wall when lanes overlap)\n",
                  S.CompileMs, S.SimMs);
  return OS.str();
}

std::string gpuc::searchStatsReport(const CompileOutput &Out) {
  return searchStatsReport(Out.Search);
}

std::string gpuc::fusionReport(const ProgramCompileOutput &Out) {
  std::ostringstream OS;
  OS << "== fusion ==\n  pipeline:";
  for (size_t I = 0; I < Out.StageNames.size(); ++I)
    OS << strFormat("%s %s", I ? " ->" : "", Out.StageNames[I].c_str());
  OS << "\n";
  for (const FusionDecision &D : Out.FusionSteps) {
    if (D.Legal) {
      OS << strFormat("  '%s': %s — %s", D.Intermediate.c_str(),
                      fusePlacementName(D.Placement), D.Reason.c_str());
      if (D.Placement == FusePlacement::SharedStage)
        OS << strFormat(" (%lld staged bytes, halo [%d, %d])",
                        D.StagingBytes, D.HaloLo, D.HaloHi);
      OS << "\n";
    } else {
      OS << strFormat("  '%s': illegal — %s\n", D.Intermediate.c_str(),
                      D.Reason.c_str());
    }
  }
  if (!Out.FusionLegal && Out.FusionSteps.empty())
    OS << strFormat("  illegal — %s\n", Out.FusionReason.c_str());
  if (Out.FusionLegal)
    OS << strFormat("  decision: %s (fused %.4f ms vs unfused %.4f ms)\n",
                    Out.UseFused ? "fused" : "unfused", Out.FusedMs,
                    Out.UnfusedMs);
  else
    OS << strFormat("  decision: unfused (fusion illegal; unfused %.4f "
                    "ms)\n",
                    Out.UnfusedMs);
  return OS.str();
}

std::string gpuc::trafficReport(const KernelFunction &K,
                                const DeviceSpec &Device) {
  std::ostringstream OS;
  Simulator Sim(Device);
  BufferSet B;
  DiagnosticsEngine D;
  PerfOptions PO;
  PO.TrackSites = true;
  PerfResult R = Sim.runPerformance(K, B, D, PO);
  if (!R.Valid)
    return "== traffic ==\n  (performance run failed)\n";
  OS << strFormat("== traffic by access (%s on %s) ==\n", K.name().c_str(),
                  Device.Name.c_str());
  for (const auto &[Label, T] : R.Sites)
    OS << strFormat("  %-40s %12.0f txns %10.2f MB%s\n", Label.c_str(),
                    T.Transactions, T.BytesMoved / 1e6,
                    T.CoalescedHalfWarps + 0.5 < T.HalfWarps
                        ? "  (NOT fully coalesced)"
                        : "");
  OS << strFormat("  total: %.2f MB moved for %.2f MB useful, "
                  "camping factor %.2f, %.4f ms\n",
                  R.Stats.bytesMovedTotal() / 1e6, R.Stats.UsefulBytes / 1e6,
                  R.Timing.CampingFactor, R.TimeMs);
  Occupancy O = computeOccupancy(Device, K);
  OS << strFormat("== occupancy ==\n  %d regs/thread, %lld B shared, "
                  "%d blocks/SM (%s-limited), %d active threads/SM\n",
                  O.RegsPerThread, O.SharedBytesPerBlock, O.BlocksPerSM,
                  O.LimitedBy, O.ActiveThreadsPerSM);
  return OS.str();
}

std::string gpuc::fullReport(KernelFunction &Naive, const CompileOutput &Out,
                             const DeviceSpec &Device) {
  std::string S = coalescingReport(Naive);
  S += "\n" + planReport(Out);
  S += "\n" + designSpaceReport(Out);
  if (Out.Best)
    S += "\n" + trafficReport(*Out.Best, Device);
  return S;
}

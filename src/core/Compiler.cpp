//===-- core/Compiler.cpp - Compilation pipeline --------------------------===//

#include "core/Compiler.h"

#include "ast/Clone.h"
#include "ast/Hash.h"
#include "ast/Printer.h"
#include "ast/Verifier.h"
#include "analysis/BarrierCheck.h"
#include "cache/DiskCache.h"
#include "core/BlockMerge.h"
#include "core/Coalescing.h"
#include "core/ConstantFold.h"
#include "core/Prefetch.h"
#include "core/AmdVectorize.h"
#include "core/ThreadMerge.h"
#include "core/Vectorize.h"
#include "exec/ThreadPool.h"
#include "sim/SimCache.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <algorithm>
#include <limits>
#include <set>
#include <tuple>

using namespace gpuc;

namespace {

/// Sets the post-coalescing launch shape: one half warp per block
/// (Section 3.3: "the thread block size is also set to 16").
bool setHalfWarpLaunch(KernelFunction &K) {
  if (K.workDomainX() % 16 != 0)
    return false;
  LaunchConfig &L = K.launch();
  L.BlockDimX = 16;
  L.BlockDimY = 1;
  L.GridDimX = K.workDomainX() / 16;
  L.GridDimY = K.workDomainY();
  L.Remap = BlockRemap();
  return true;
}

int countUncoalescedStores(KernelFunction &K) {
  int N = 0;
  for (const AccessInfo &A : collectGlobalAccesses(K))
    if (A.IsStore && A.Resolved && !checkCoalescing(A, K).Coalesced)
      ++N;
  return N;
}

/// True if some load needs the loop-free transpose tile (Pattern V with an
/// idy-shaped contiguous dimension), which wants a 16x16 block.
bool needsTransposeTile(KernelFunction &K) {
  for (const AccessInfo &A : collectGlobalAccesses(K)) {
    if (A.IsStore || !A.Resolved || A.DimAffine.size() != 2)
      continue;
    CoalesceInfo CI = checkCoalescing(A, K);
    if (CI.Failure != CoalesceFailure::HighDimThread)
      continue;
    const AffineExpr &Last = A.DimAffine.back();
    if (!Last.hasLoopTerms() && Last.CTidy == 1 &&
        Last.CBidy == K.launch().BlockDimY && Last.CTidx == 0 &&
        Last.CBidx == 0)
      return true;
  }
  return false;
}

} // namespace

uint64_t gpuc::compileCacheKey(const KernelFunction &Naive,
                               const CompileOptions &Opt) {
  uint64_t H = hashKernel(Naive);
  H = hashCombine(H, hashDevice(Opt.Device));
  H = hashCombine(H, hashPerfOptions(Opt.Perf));
  uint64_t Flags = 0;
  Flags |= Opt.Vectorize ? 1u << 0 : 0;
  Flags |= Opt.Coalesce ? 1u << 1 : 0;
  Flags |= Opt.Merge ? 1u << 2 : 0;
  Flags |= Opt.Prefetch ? 1u << 3 : 0;
  Flags |= Opt.PartitionElim ? 1u << 4 : 0;
  Flags |= Opt.Fold ? 1u << 5 : 0;
  Flags |= Opt.Verify ? 1u << 6 : 0;
  // Pruning provably never changes the winner (test-enforced), but keying
  // on it is free and keeps the entry's provenance unambiguous.
  Flags |= Opt.ExhaustiveSearch ? 1u << 7 : 0;
  // The layout dimension changes which variants compete, so the winner
  // of a layout search must never be served to a legacy-heuristic caller
  // (or vice versa).
  Flags |= Opt.LayoutSearch ? 1u << 8 : 0;
  return hashCombine(H, Flags);
}

const std::vector<const char *> &gpuc::pipelineStageNames() {
  static const std::vector<const char *> Names = {
      "input",  "vectorize",         "coalesce", "merge",
      "partition-camping", "prefetch", "final"};
  return Names;
}

KernelFunction *GpuCompiler::compileVariant(const KernelFunction &Naive,
                                            const CompileOptions &Opt,
                                            int BlockN, int ThreadM,
                                            MergePlan *PlanOut,
                                            PartitionCampResult *CampOut,
                                            const LayoutPoint *Layout,
                                            CampingAnalysis *ScanOut) {
  std::string Name =
      strFormat("%s_opt_b%d_t%d", Naive.name().c_str(), BlockN, ThreadM);
  KernelFunction *V = cloneKernel(M, &Naive, Name);
  ASTContext &Ctx = M.context();

  // Per-stage observer (the sanitizer layer): every intermediate kernel is
  // announced, and the last announcement on each return path is final. A
  // HookFactory binds to this compiler's engine, which in a search task is
  // the task's own — that's what keeps hooked searches parallel.
  StageHook Hook = Opt.Hook;
  if (!Hook && Opt.HookFactory)
    Hook = Opt.HookFactory(Diags);
  auto Stage = [&](const char *StageName, bool Final = false) {
    if (Hook)
      Hook(StageName, *V, Final);
  };
  Stage("input");

  if (Opt.Vectorize) {
    vectorizeAccesses(*V, Ctx);
    // Section 3.1: ATI/AMD targets also group neighboring threads' X
    // accesses into wide vectors (float4 is their fastest class).
    if (Opt.Device.PreferWideVectors && amdVectorize(*V, Ctx, 4))
      setHalfWarpLaunch(*V);
    Stage("vectorize");
  }

  if (!Opt.Coalesce) {
    Stage("final", /*Final=*/true);
    return V;
  }

  if (!setHalfWarpLaunch(*V)) {
    Stage("final", /*Final=*/true);
    return V; // domain not tileable; keep the naive launch
  }

  // Transpose-shaped kernels: if stores are non-coalesced and exchanging
  // idx/idy fixes them, exchange (Section 3.3's loop-interchange analog).
  int BadStores = countUncoalescedStores(*V);
  if (BadStores > 0 && V->workDomainY() > 1) {
    exchangeIdxIdy(*V, Ctx);
    setHalfWarpLaunch(*V);
    if (countUncoalescedStores(*V) >= BadStores) {
      exchangeIdxIdy(*V, Ctx); // no improvement: undo
      setHalfWarpLaunch(*V);
    }
  }

  // The loop-free tile pattern needs a 16x16 block before conversion.
  if (needsTransposeTile(*V) && V->launch().GridDimY % 16 == 0)
    blockMergeY(*V, 16);

  CoalesceResult CR = convertNonCoalesced(*V, Ctx, Diags);
  Stage("coalesce");

  MergePlan Plan = planMerges(*V, CR);
  if (PlanOut)
    *PlanOut = Plan;

  if (Opt.Merge) {
    if (Plan.BlockMergeX && BlockN > 1)
      blockMergeX(*V, Ctx, CR, BlockN);
    if (ThreadM > 1) {
      if (Plan.ThreadMergeY)
        threadMerge(*V, Ctx, ThreadM, /*AlongY=*/true);
      else if (Plan.ThreadMergeX)
        threadMerge(*V, Ctx, ThreadM, /*AlongY=*/false);
    }
    Stage("merge");
  }

  // Camping rotation must precede prefetch (see header note). The scan
  // runs before any layout is applied: it sees the variant exactly as the
  // legacy heuristic would, plus the scaled strides merging could create.
  PartitionCampResult Camp;
  if (Opt.PartitionElim) {
    if (ScanOut)
      *ScanOut = analyzeCamping(*V, Opt.Device, {8, 16, 32});
    Camp = Layout ? applyLayout(*V, Ctx, Opt.Device, *Layout)
                  : eliminatePartitionCamping(*V, Ctx, Opt.Device);
    Stage("partition-camping");
  }
  if (CampOut)
    *CampOut = Camp;

  if (Opt.Prefetch) {
    insertPrefetch(*V, Ctx);
    Stage("prefetch");
  }

  if (Opt.Fold)
    foldKernel(*V, Ctx);

  if (Opt.Verify) {
    for (const std::string &Violation : verifyKernel(*V))
      Diags.error(SourceLocation(),
                  strFormat("%s: %s", V->name().c_str(), Violation.c_str()));
    // Barrier uniformity is semantic, not structural: the dataflow
    // engine's divergence lattice must prove every barrier (conservative
    // parity with the pre-analysis Verifier: an unproven barrier is still
    // an error, but thread-invariant conditions now verify).
    for (const BarrierIssue &Issue : checkBarriers(*V))
      Diags.error(SourceLocation(), strFormat("%s: %s", V->name().c_str(),
                                              Issue.Message.c_str()));
  }
  Stage("final", /*Final=*/true);
  return V;
}

CompileOutput GpuCompiler::compile(const KernelFunction &Naive,
                                   const CompileOptions &Opt) {
  WallTimer SearchWall;
  CompileOutput Out;

  if (compileCancelled(Opt)) {
    Out.Log += "search cancelled\n";
    return Out;
  }

  // Probe the merge plan with a unit variant (built in the caller's
  // module, as always — single-variant compilations are unaffected by the
  // search machinery below). In layout mode the probe is compiled with the
  // explicit identity point — same output as the legacy heuristic when no
  // camping is detected — and additionally scans for camping at the
  // candidate block-merge strides, which gates the family enumeration.
  const bool LayoutMode = Opt.LayoutSearch && Opt.PartitionElim;
  const LayoutPoint Identity = LayoutPoint::identityPoint();
  CampingAnalysis Scan;
  KernelFunction *Probe =
      compileVariant(Naive, Opt, /*BlockN=*/1, /*ThreadM=*/1, &Out.Plan,
                     &Out.Camping, LayoutMode ? &Identity : nullptr,
                     LayoutMode ? &Scan : nullptr);
  if (!Probe || Diags.hasErrors()) {
    Out.Log += "probe compilation failed\n";
    return Out;
  }

  // Candidate factors (Section 4.1): block merges giving 128/256/512
  // threads per block, thread-merge degrees 4..32.
  std::vector<int> BlockNs{1};
  if (Opt.Merge && Out.Plan.BlockMergeX)
    BlockNs = {1, 8, 16, 32};
  std::vector<int> ThreadMs{1};
  if (Opt.Merge && Out.Plan.anyThreadMerge())
    ThreadMs = {1, 4, 8, 16, 32};

  // The affine layout dimension (outermost). Camping-free kernels get the
  // identity alone, so their candidate set — and their search cost — is
  // unchanged by layout mode.
  std::vector<LayoutPoint> Layouts{LayoutPoint::identityPoint()};
  if (LayoutMode)
    Layouts = enumerateLayouts(*Probe, Opt.Device, Scan);

  // One slot per candidate in canonical (layout outer, then N, then M)
  // order. Every search result is keyed by slot, every decision reads
  // deterministic per-slot values, and the final reduction walks slots in
  // order — the outcome is therefore independent of task completion order
  // and of the lane count. Identity is layout slot 0, so the strict-<
  // reduction keeps the untransformed variant whenever a permutation buys
  // nothing.
  struct Candidate {
    int N = 1, Mm = 1;
    LayoutPoint Layout;
    PartitionCampResult Camp;
    /// Owning module for non-probe variants. ASTContext is not
    /// thread-safe and nodes carry interpreter scratch, so a variant is
    /// only ever touched by the task that owns its slot.
    std::shared_ptr<Module> Owner;
    DiagnosticsEngine TaskDiags;
    KernelFunction *Kernel = nullptr;
    Occupancy Occ;
    bool OccInfeasible = false;
    bool Probed = false;
    double LowerBoundMs = 0;
    bool Simulated = false;
    bool Pruned = false;
    bool StaticallyPruned = false;
    PerfResult Perf;
    std::string SimLog;
    double CompileWallMs = 0;
    double SimWallMs = 0;
  };
  std::vector<Candidate> Cands(Layouts.size() * BlockNs.size() *
                               ThreadMs.size());
  {
    size_t I = 0;
    for (const LayoutPoint &L : Layouts)
      for (int N : BlockNs)
        for (int Mm : ThreadMs) {
          Cands[I].Layout = L;
          Cands[I].N = N;
          Cands[I].Mm = Mm;
          ++I;
        }
  }

  // The stage hook (the sanitizer layer) observes every intermediate
  // kernel through shared state; keep its invocation order defined by
  // searching serially whenever one is installed.
  unsigned Jobs = Opt.Jobs <= 0 ? ThreadPool::defaultConcurrency()
                                : static_cast<unsigned>(Opt.Jobs);
  if (Opt.Hook)
    Jobs = 1;
  ThreadPool Pool(Jobs);

  SimCache LocalCache;
  SimCache *Cache = Opt.Cache ? Opt.Cache : &LocalCache;
  // Wire the persistent tier under whichever memo table this search uses;
  // a caller-provided cache gets its previous wiring back afterwards.
  SimCacheBackend *PrevBackend = Cache->backend();
  if (Opt.Disk)
    Cache->setBackend(Opt.Disk);
  const uint64_t Hits0 = Cache->hits();
  const uint64_t Misses0 = Cache->misses();
  const uint64_t DiskHits0 = Cache->diskHits();
  Simulator Sim(Opt.Device);
  Sim.setCache(Cache);
  Sim.setInterpBackend(Opt.Interp);

  // The probe profile's coarser sampling can miss camping and imbalance
  // effects that only ever increase the full-run estimate; the safety
  // factor keeps the bound under the model's full-run time.
  constexpr double LowerBoundSafety = 0.75;
  const PerfOptions ProbeOpts = PerfOptions::lowerBoundProbe();

  // Phase A: compile every candidate in its own Module/ASTContext arena
  // with its own DiagnosticsEngine, compute occupancy, and (unless the
  // search is exhaustive) estimate a lower bound with a cheap probe run.
  Pool.parallelFor(Cands.size(), [&](size_t I) {
    Candidate &C = Cands[I];
    if (compileCancelled(Opt))
      return; // cancelled: leave the slot unbuilt, discarded below
    WallTimer CompileTimer;
    if (C.N == 1 && C.Mm == 1 && C.Layout.identity()) {
      C.Kernel = Probe; // already built for the plan probe
      C.Camp = Out.Camping;
    } else {
      C.Owner = std::make_shared<Module>();
      GpuCompiler TaskCompiler(*C.Owner, C.TaskDiags);
      C.Kernel =
          TaskCompiler.compileVariant(Naive, Opt, C.N, C.Mm, nullptr,
                                      &C.Camp,
                                      LayoutMode ? &C.Layout : nullptr);
    }
    C.CompileWallMs = CompileTimer.elapsedMs();
    if (!C.Kernel)
      return;
    C.Occ = computeOccupancy(Opt.Device, *C.Kernel);
    C.OccInfeasible = C.Occ.Infeasible;
    if (C.OccInfeasible)
      return;
    // A Violation verdict means the variant provably faults at runtime —
    // its performance run could never succeed, so skip probe and
    // simulation outright. The fuzz oracle's static/dynamic differential
    // keeps this sound, which is what guarantees identical winners with
    // pruning on or off.
    if (Opt.StaticPrune && runDataflow(*C.Kernel).anyViolation()) {
      C.StaticallyPruned = true;
      return;
    }
    if (Opt.ExhaustiveSearch)
      return;
    WallTimer ProbeTimer;
    BufferSet Buffers;
    DiagnosticsEngine ProbeDiags;
    PerfResult LB = Sim.runPerformance(*C.Kernel, Buffers, ProbeDiags,
                                       ProbeOpts);
    C.SimWallMs += ProbeTimer.elapsedMs();
    C.Probed = true;
    if (LB.Valid)
      C.LowerBoundMs = LB.TimeMs * LowerBoundSafety;
  });

  // Replay per-task diagnostics into the caller's engine in slot order
  // (identical text for every lane count). Exact duplicates are emitted
  // once: every variant of one kernel runs the same sanitizer over mostly
  // identical stages, and repeating a finding per candidate only buries
  // it.
  {
    std::set<std::tuple<DiagKind, int, int, std::string>> Seen;
    for (const Diagnostic &D : Diags.diagnostics())
      Seen.insert({D.Kind, D.Loc.Line, D.Loc.Col, D.Message});
    for (Candidate &C : Cands)
      for (const Diagnostic &D : C.TaskDiags.diagnostics())
        if (Seen.insert({D.Kind, D.Loc.Line, D.Loc.Col, D.Message}).second)
          Diags.report(D.Kind, D.Loc, D.Message);
  }

  auto FullSim = [&](size_t I) {
    Candidate &C = Cands[I];
    if (compileCancelled(Opt))
      return; // cancelled: skip the run; the result is discarded below
    WallTimer SimTimer;
    BufferSet Buffers;
    DiagnosticsEngine RunDiags;
    C.Perf = Sim.runPerformance(*C.Kernel, Buffers, RunDiags, Opt.Perf);
    C.SimWallMs += SimTimer.elapsedMs();
    C.Simulated = true;
    if (!C.Perf.Valid)
      C.SimLog = strFormat("b%d t%d: %s", C.N, C.Mm, RunDiags.str().c_str());
  };

  std::vector<size_t> Runnable;
  for (size_t I = 0; I < Cands.size(); ++I)
    if (Cands[I].Kernel && !Cands[I].OccInfeasible &&
        !Cands[I].StaticallyPruned)
      Runnable.push_back(I);

  // Phase B: full performance runs. The candidate with the smallest lower
  // bound becomes the champion; it is measured first and its time prunes
  // every candidate whose bound it beats. A pruned candidate's true time
  // is >= its bound > the champion's time >= the final winner's time, so
  // pruning cannot change the winner as long as the bound holds (the
  // ExhaustiveSearch tests enforce exactly that).
  double Threshold = std::numeric_limits<double>::infinity();
  if (Opt.ExhaustiveSearch || Runnable.size() <= 1) {
    Pool.parallelFor(Runnable.size(),
                     [&](size_t I) { FullSim(Runnable[I]); });
  } else {
    std::stable_sort(Runnable.begin(), Runnable.end(),
                     [&](size_t A, size_t B) {
                       return Cands[A].LowerBoundMs < Cands[B].LowerBoundMs;
                     });
    const size_t Champion = Runnable.front();
    FullSim(Champion);
    if (Cands[Champion].Perf.Valid)
      Threshold = Cands[Champion].Perf.TimeMs;
    std::vector<size_t> Survivors;
    for (size_t I = 1; I < Runnable.size(); ++I) {
      Candidate &C = Cands[Runnable[I]];
      if (C.LowerBoundMs > Threshold)
        C.Pruned = true;
      else
        Survivors.push_back(Runnable[I]);
    }
    Pool.parallelFor(Survivors.size(),
                     [&](size_t I) { FullSim(Survivors[I]); });
  }

  // Phase C: deterministic reduction in canonical order; strict < keeps
  // the earliest candidate on ties, exactly like the serial loop did.
  PartitionCampResult BestCamp;
  for (Candidate &C : Cands) {
    if (!C.Kernel)
      continue;
    // Keep the legacy log format for legacy-shaped searches; tag the
    // layout only when the family was actually enumerated.
    const std::string Tag =
        Layouts.size() > 1
            ? strFormat("%s b%d t%d", C.Layout.name(), C.N, C.Mm)
            : strFormat("b%d t%d", C.N, C.Mm);
    VariantResult VR;
    VR.Kernel = C.Kernel;
    VR.BlockMergeN = C.N;
    VR.ThreadMergeM = C.Mm;
    VR.Layout = C.Layout.name();
    VR.LowerBoundMs = C.LowerBoundMs;
    VR.CompileWallMs = C.CompileWallMs;
    VR.SimWallMs = C.SimWallMs;
    if (C.OccInfeasible) {
      VR.LimitedBy = C.Occ.LimitedBy;
      VR.Perf.Occ = C.Occ;
      Out.Log += strFormat("%s: infeasible (%s)\n", Tag.c_str(),
                           C.Occ.LimitedBy);
    } else if (C.StaticallyPruned) {
      VR.StaticallyPruned = true;
      Out.Log += strFormat("%s: statically pruned (proven "
                           "out-of-bounds access or invalid barrier)\n",
                           Tag.c_str());
    } else if (C.Pruned) {
      VR.Pruned = true;
      Out.Log += strFormat(
          "%s: pruned (lower bound %.4f ms > best %.4f ms)\n", Tag.c_str(),
          C.LowerBoundMs, Threshold);
    } else {
      VR.Perf = C.Perf;
      VR.Feasible = C.Perf.Valid;
      if (!VR.Feasible)
        Out.Log += C.SimLog;
    }
    Out.Variants.push_back(VR);
    if (VR.Feasible &&
        (!Out.Best || VR.Perf.TimeMs < Out.BestVariant.Perf.TimeMs)) {
      Out.Best = VR.Kernel;
      Out.BestVariant = VR;
      BestCamp = C.Camp;
    }
    if (C.Owner)
      Out.OwnedModules.push_back(std::move(C.Owner));
  }
  if (!Out.Best && Probe) {
    Out.Best = Probe;
    Out.BestVariant.Kernel = Probe;
  }
  // The probe's camping result only reflects the identity point; fold in
  // what the winning candidate actually detected and applied (merging can
  // create camping the probe never saw).
  if (LayoutMode && Out.BestVariant.Feasible) {
    Out.Camping.Detected |= BestCamp.Detected;
    Out.Camping.AppliedOffset |= BestCamp.AppliedOffset;
    Out.Camping.AppliedDiagonal |= BestCamp.AppliedDiagonal;
    Out.Camping.CampingAccesses =
        std::max(Out.Camping.CampingAccesses, BestCamp.CampingAccesses);
  }

  Out.Search.Jobs = static_cast<int>(Pool.concurrency());
  Out.Search.Candidates = static_cast<int>(Cands.size());
  Out.Search.LayoutPoints = static_cast<int>(Layouts.size());
  if (Out.BestVariant.Feasible &&
      std::string(Out.BestVariant.Layout) != "identity")
    Out.Search.LayoutWins = 1;
  for (const Candidate &C : Cands) {
    Out.Search.Simulated += C.Simulated ? 1 : 0;
    Out.Search.Probed += C.Probed ? 1 : 0;
    Out.Search.Pruned += C.Pruned ? 1 : 0;
    Out.Search.StaticallyPruned += C.StaticallyPruned ? 1 : 0;
    Out.Search.Infeasible += C.OccInfeasible ? 1 : 0;
    Out.Search.CompileMs += C.CompileWallMs;
    Out.Search.SimMs += C.SimWallMs;
    Out.Search.CritPathMs = std::max(Out.Search.CritPathMs,
                                     C.CompileWallMs + C.SimWallMs);
  }
  Out.Search.CacheHits = Cache->hits() - Hits0;
  Out.Search.CacheMisses = Cache->misses() - Misses0;
  Out.Search.DiskHits = Cache->diskHits() - DiskHits0;
  Out.Search.ScalarFallbacks = Sim.scalarFallbacks();
  Out.Search.WallMs = SearchWall.elapsedMs();

  // A cancelled search ran over a partial candidate set; its champion is
  // not the true winner, so the result is withdrawn — nothing is returned
  // and (via the Out.Best guard below) nothing is published to disk.
  if (compileCancelled(Opt)) {
    Out.Best = nullptr;
    Out.BestVariant = VariantResult();
    Out.Log += "search cancelled\n";
  }

  // Persist the search's winner (text + factors) so a later process can
  // reuse it without re-searching. Only diagnostics-clean compilations are
  // stored: a warm consumer that skips the search must not silently drop
  // warnings a cold run would have printed. If a warm entry already exists
  // it must match what this full search just produced — a mismatch means a
  // stale or foreign entry (the schema version should have been bumped),
  // and the freshly computed result overwrites it, so cached and uncached
  // runs can never diverge.
  if (Opt.Disk && Out.Best && Out.BestVariant.Feasible &&
      !Diags.hasErrors() && !Diags.hasWarnings()) {
    const uint64_t TextKey = compileCacheKey(Naive, Opt);
    CachedCompile Entry;
    Entry.KernelText = printKernel(*Out.Best);
    Entry.BlockMergeN = Out.BestVariant.BlockMergeN;
    Entry.ThreadMergeM = Out.BestVariant.ThreadMergeM;
    Entry.TimeMs = Out.BestVariant.Perf.TimeMs;
    CachedCompile Existing;
    if (!Opt.Disk->loadText(TextKey, Existing)) {
      Opt.Disk->storeText(TextKey, Entry);
    } else if (Existing.KernelText != Entry.KernelText ||
               Existing.BlockMergeN != Entry.BlockMergeN ||
               Existing.ThreadMergeM != Entry.ThreadMergeM) {
      Out.Log += "disk cache: stale winner entry replaced (cross-check "
                 "mismatch)\n";
      Opt.Disk->storeText(TextKey, Entry);
    }
  }
  if (Opt.Disk && Opt.Cache)
    Cache->setBackend(PrevBackend);
  return Out;
}

uint64_t
gpuc::programCacheKey(const std::vector<const KernelFunction *> &Stages,
                      const CompileOptions &Opt) {
  // Ordered fold: swapping two stages or dropping one changes the key even
  // when the per-stage keys are a permutation of each other.
  uint64_t H = hashCombine(0x70697065u /* 'pipe' */,
                           static_cast<uint64_t>(Stages.size()));
  for (const KernelFunction *S : Stages)
    H = hashCombine(H, compileCacheKey(*S, Opt));
  return H;
}

namespace {

/// Merges one search's counters into the program-level aggregate. The
/// program's searches run back to back, so wall-clock and critical path
/// add (unlike lanes within one search, which overlap).
void addSearchStats(SearchStats &A, const SearchStats &B) {
  A.Jobs = std::max(A.Jobs, B.Jobs);
  A.Candidates += B.Candidates;
  A.Simulated += B.Simulated;
  A.Probed += B.Probed;
  A.Pruned += B.Pruned;
  A.StaticallyPruned += B.StaticallyPruned;
  A.Infeasible += B.Infeasible;
  A.CacheHits += B.CacheHits;
  A.CacheMisses += B.CacheMisses;
  A.DiskHits += B.DiskHits;
  A.WallMs += B.WallMs;
  A.CompileMs += B.CompileMs;
  A.SimMs += B.SimMs;
  A.CritPathMs += B.CritPathMs;
  A.ScalarFallbacks += B.ScalarFallbacks;
  A.LayoutPoints += B.LayoutPoints;
  A.LayoutWins += B.LayoutWins;
}

} // namespace

ProgramCompileOutput
GpuCompiler::compileProgram(const std::vector<const KernelFunction *> &Stages,
                            const CompileOptions &Opt) {
  ProgramCompileOutput Out;
  Out.Search.Jobs = 0;
  for (const KernelFunction *S : Stages)
    Out.StageNames.push_back(S->name());
  if (Stages.size() < 2) {
    Diags.error({}, "a pipeline compilation needs at least two kernels");
    return Out;
  }

  // Fusion legality is decided once, up front; the fused kernel (if any)
  // then competes in the design-space search like any other dimension.
  const std::string FusedName = Stages.back()->name() + "_fused";
  PipelineFusion PF = fusePipeline(M, Stages, Opt.Device, FusedName);
  Out.FusionLegal = PF.Legal;
  Out.FusionReason = PF.Reason;
  Out.FusionSteps = PF.Steps;
  Out.Fused = PF.Fused;
  Out.Search.FusionCandidates = static_cast<int>(PF.Steps.size());
  for (const FusionDecision &D : PF.Steps)
    ++(D.Legal ? Out.Search.FusionLegal : Out.Search.FusionRejected);

  // Unfused side: every stage gets its own full search. The shared
  // SimCache/DiskCache wiring (Opt.Cache / Opt.Disk) carries over, so
  // repeated program compiles reuse per-stage winners.
  bool AllStagesFeasible = true;
  double UnfusedMs = 0;
  for (const KernelFunction *S : Stages) {
    CompileOutput CO = compile(*S, Opt);
    if (CO.Best && CO.BestVariant.Feasible)
      UnfusedMs += CO.BestVariant.Perf.TimeMs;
    else
      AllStagesFeasible = false;
    addSearchStats(Out.Search, CO.Search);
    Out.StageOuts.push_back(std::move(CO));
  }
  if (AllStagesFeasible)
    Out.UnfusedMs = UnfusedMs;

  // Fused side. A shared-stage kernel is searched with merging pinned
  // off: the 16-wide staging tile bakes the launch geometry into the
  // body, and merge factors would break the barrier proof's alignment.
  bool FusedFeasible = false;
  if (PF.Legal) {
    CompileOptions FOpt = Opt;
    if (PF.UsedSharedStage)
      FOpt.Merge = false;
    Out.FusedOut = compile(*PF.Fused, FOpt);
    addSearchStats(Out.Search, Out.FusedOut.Search);
    FusedFeasible = Out.FusedOut.Best && Out.FusedOut.BestVariant.Feasible;
    if (FusedFeasible)
      Out.FusedMs = Out.FusedOut.BestVariant.Perf.TimeMs;
  }
  Out.AllFeasible = AllStagesFeasible && (!PF.Legal || FusedFeasible);

  Out.UseFused =
      FusedFeasible && (!AllStagesFeasible || Out.FusedMs < Out.UnfusedMs);
  if (Out.UseFused)
    Out.Search.FusionWins = 1;

  // Deterministic program text: decision header + the chosen winner(s).
  // This is what gpucc emits and what the disk cache replays, so cold and
  // warm runs are byte-identical.
  std::string T = "// pipeline:";
  for (size_t I = 0; I < Out.StageNames.size(); ++I)
    T += strFormat("%s %s", I ? " ->" : "", Out.StageNames[I].c_str());
  T += "\n";
  if (PF.Legal) {
    for (size_t I = 0; I < PF.Steps.size(); ++I) {
      const FusionDecision &D = PF.Steps[I];
      T += strFormat("// fusion: '%s' -> %s (%s)\n", D.Intermediate.c_str(),
                     fusePlacementName(D.Placement), D.Reason.c_str());
    }
  } else {
    T += "// fusion: rejected: " + PF.Reason + "\n";
  }
  T += strFormat("// decision: %s (fused %.6f ms vs unfused %.6f ms)\n",
                 Out.UseFused ? "fused" : "unfused", Out.FusedMs,
                 Out.UnfusedMs);
  if (Out.UseFused) {
    T += printKernel(*Out.FusedOut.Best);
  } else {
    for (size_t I = 0; I < Out.StageOuts.size(); ++I) {
      T += strFormat("%s// stage: %s\n", I ? "\n" : "",
                     Out.StageNames[I].c_str());
      if (Out.StageOuts[I].Best)
        T += printKernel(*Out.StageOuts[I].Best);
    }
  }
  Out.ProgramText = std::move(T);

  // Program-level winner store, mirroring the single-kernel block above:
  // clean compiles only, cross-check-replace on mismatch. The per-stage
  // and fused entries were already stored by the nested compile() calls;
  // this entry memoizes the decision and the assembled text.
  if (Opt.Disk && Out.AllFeasible && !Diags.hasErrors() &&
      !Diags.hasWarnings()) {
    const uint64_t TextKey = programCacheKey(Stages, Opt);
    CachedCompile Entry;
    Entry.KernelText = Out.ProgramText;
    if (Out.UseFused) {
      Entry.BlockMergeN = Out.FusedOut.BestVariant.BlockMergeN;
      Entry.ThreadMergeM = Out.FusedOut.BestVariant.ThreadMergeM;
      Entry.TimeMs = Out.FusedMs;
    } else {
      Entry.BlockMergeN = 0;
      Entry.ThreadMergeM = 0;
      Entry.TimeMs = Out.UnfusedMs;
    }
    CachedCompile Existing;
    if (!Opt.Disk->loadText(TextKey, Existing) ||
        Existing.KernelText != Entry.KernelText)
      Opt.Disk->storeText(TextKey, Entry);
  }
  return Out;
}

//===-- core/Compiler.cpp - Compilation pipeline --------------------------===//

#include "core/Compiler.h"

#include "ast/Clone.h"
#include "ast/Verifier.h"
#include "core/BlockMerge.h"
#include "core/Coalescing.h"
#include "core/ConstantFold.h"
#include "core/Prefetch.h"
#include "core/AmdVectorize.h"
#include "core/ThreadMerge.h"
#include "core/Vectorize.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace gpuc;

namespace {

/// Sets the post-coalescing launch shape: one half warp per block
/// (Section 3.3: "the thread block size is also set to 16").
bool setHalfWarpLaunch(KernelFunction &K) {
  if (K.workDomainX() % 16 != 0)
    return false;
  LaunchConfig &L = K.launch();
  L.BlockDimX = 16;
  L.BlockDimY = 1;
  L.GridDimX = K.workDomainX() / 16;
  L.GridDimY = K.workDomainY();
  L.DiagonalRemap = false;
  return true;
}

int countUncoalescedStores(KernelFunction &K) {
  int N = 0;
  for (const AccessInfo &A : collectGlobalAccesses(K))
    if (A.IsStore && A.Resolved && !checkCoalescing(A, K).Coalesced)
      ++N;
  return N;
}

/// True if some load needs the loop-free transpose tile (Pattern V with an
/// idy-shaped contiguous dimension), which wants a 16x16 block.
bool needsTransposeTile(KernelFunction &K) {
  for (const AccessInfo &A : collectGlobalAccesses(K)) {
    if (A.IsStore || !A.Resolved || A.DimAffine.size() != 2)
      continue;
    CoalesceInfo CI = checkCoalescing(A, K);
    if (CI.Failure != CoalesceFailure::HighDimThread)
      continue;
    const AffineExpr &Last = A.DimAffine.back();
    if (!Last.hasLoopTerms() && Last.CTidy == 1 &&
        Last.CBidy == K.launch().BlockDimY && Last.CTidx == 0 &&
        Last.CBidx == 0)
      return true;
  }
  return false;
}

} // namespace

KernelFunction *GpuCompiler::compileVariant(const KernelFunction &Naive,
                                            const CompileOptions &Opt,
                                            int BlockN, int ThreadM,
                                            MergePlan *PlanOut,
                                            PartitionCampResult *CampOut) {
  std::string Name =
      strFormat("%s_opt_b%d_t%d", Naive.name().c_str(), BlockN, ThreadM);
  KernelFunction *V = cloneKernel(M, &Naive, Name);
  ASTContext &Ctx = M.context();

  // Per-stage observer (the sanitizer layer): every intermediate kernel is
  // announced, and the last announcement on each return path is final.
  auto Stage = [&](const char *StageName, bool Final = false) {
    if (Opt.Hook)
      Opt.Hook(StageName, *V, Final);
  };
  Stage("input");

  if (Opt.Vectorize) {
    vectorizeAccesses(*V, Ctx);
    // Section 3.1: ATI/AMD targets also group neighboring threads' X
    // accesses into wide vectors (float4 is their fastest class).
    if (Opt.Device.PreferWideVectors && amdVectorize(*V, Ctx, 4))
      setHalfWarpLaunch(*V);
    Stage("vectorize");
  }

  if (!Opt.Coalesce) {
    Stage("final", /*Final=*/true);
    return V;
  }

  if (!setHalfWarpLaunch(*V)) {
    Stage("final", /*Final=*/true);
    return V; // domain not tileable; keep the naive launch
  }

  // Transpose-shaped kernels: if stores are non-coalesced and exchanging
  // idx/idy fixes them, exchange (Section 3.3's loop-interchange analog).
  int BadStores = countUncoalescedStores(*V);
  if (BadStores > 0 && V->workDomainY() > 1) {
    exchangeIdxIdy(*V, Ctx);
    setHalfWarpLaunch(*V);
    if (countUncoalescedStores(*V) >= BadStores) {
      exchangeIdxIdy(*V, Ctx); // no improvement: undo
      setHalfWarpLaunch(*V);
    }
  }

  // The loop-free tile pattern needs a 16x16 block before conversion.
  if (needsTransposeTile(*V) && V->launch().GridDimY % 16 == 0)
    blockMergeY(*V, 16);

  CoalesceResult CR = convertNonCoalesced(*V, Ctx, Diags);
  Stage("coalesce");

  MergePlan Plan = planMerges(*V, CR);
  if (PlanOut)
    *PlanOut = Plan;

  if (Opt.Merge) {
    if (Plan.BlockMergeX && BlockN > 1)
      blockMergeX(*V, Ctx, CR, BlockN);
    if (ThreadM > 1) {
      if (Plan.ThreadMergeY)
        threadMerge(*V, Ctx, ThreadM, /*AlongY=*/true);
      else if (Plan.ThreadMergeX)
        threadMerge(*V, Ctx, ThreadM, /*AlongY=*/false);
    }
    Stage("merge");
  }

  // Camping rotation must precede prefetch (see header note).
  PartitionCampResult Camp;
  if (Opt.PartitionElim) {
    Camp = eliminatePartitionCamping(*V, Ctx, Opt.Device);
    Stage("partition-camping");
  }
  if (CampOut)
    *CampOut = Camp;

  if (Opt.Prefetch) {
    insertPrefetch(*V, Ctx);
    Stage("prefetch");
  }

  if (Opt.Fold)
    foldKernel(*V, Ctx);

  if (Opt.Verify) {
    for (const std::string &Violation : verifyKernel(*V))
      Diags.error(SourceLocation(),
                  strFormat("%s: %s", V->name().c_str(), Violation.c_str()));
  }
  Stage("final", /*Final=*/true);
  return V;
}

CompileOutput GpuCompiler::compile(const KernelFunction &Naive,
                                   const CompileOptions &Opt) {
  CompileOutput Out;

  // Probe the merge plan with a unit variant.
  KernelFunction *Probe =
      compileVariant(Naive, Opt, /*BlockN=*/1, /*ThreadM=*/1, &Out.Plan,
                     &Out.Camping);
  if (!Probe || Diags.hasErrors()) {
    Out.Log += "probe compilation failed\n";
    return Out;
  }

  // Candidate factors (Section 4.1): block merges giving 128/256/512
  // threads per block, thread-merge degrees 4..32.
  std::vector<int> BlockNs{1};
  if (Opt.Merge && Out.Plan.BlockMergeX)
    BlockNs = {1, 8, 16, 32};
  std::vector<int> ThreadMs{1};
  if (Opt.Merge && Out.Plan.anyThreadMerge())
    ThreadMs = {1, 4, 8, 16, 32};

  Simulator Sim(Opt.Device);
  for (int N : BlockNs) {
    for (int Mm : ThreadMs) {
      VariantResult VR;
      VR.BlockMergeN = N;
      VR.ThreadMergeM = Mm;
      VR.Kernel = (N == 1 && Mm == 1)
                      ? Probe
                      : compileVariant(Naive, Opt, N, Mm);
      if (!VR.Kernel)
        continue;
      Occupancy Occ = computeOccupancy(Opt.Device, *VR.Kernel);
      if (Occ.Infeasible) {
        Out.Log += strFormat("b%d t%d: infeasible (%s)\n", N, Mm,
                             Occ.LimitedBy);
        Out.Variants.push_back(VR);
        continue;
      }
      BufferSet Buffers;
      DiagnosticsEngine RunDiags;
      VR.Perf = Sim.runPerformance(*VR.Kernel, Buffers, RunDiags);
      VR.Feasible = VR.Perf.Valid;
      if (!VR.Feasible)
        Out.Log += strFormat("b%d t%d: %s", N, Mm, RunDiags.str().c_str());
      Out.Variants.push_back(VR);
      if (VR.Feasible &&
          (!Out.Best || VR.Perf.TimeMs < Out.BestVariant.Perf.TimeMs)) {
        Out.Best = VR.Kernel;
        Out.BestVariant = VR;
      }
    }
  }
  if (!Out.Best && Probe) {
    Out.Best = Probe;
    Out.BestVariant.Kernel = Probe;
  }
  return Out;
}

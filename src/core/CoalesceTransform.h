//===-- core/CoalesceTransform.h - Non-coalesced -> coalesced ---*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.3: converts non-coalesced global loads into coalesced ones
/// through shared-memory staging. Three conversion patterns cover the
/// paper's cases:
///
///  * Pattern A ("loop index", Figure 3a): the subscript walks a row with
///    a loop iterator (a[idy][i], b[i]). The loop is unrolled by
///    16/GCD(m,16): the outer loop steps by 16, an inner 16-iteration loop
///    is introduced, a 16-element shared array is staged with
///    base[...][i+tidx], and the access becomes shared[k].
///
///  * Pattern V ("thread id in a higher-order dimension", Figure 3b): the
///    thread id indexes rows (a[idx][i]). A 16x16(+1 padding) tile is
///    staged with an introduced 16-iteration loop
///    shared[l][tidx] = a[(idx-tidx)+l][i+tidx], and the access becomes
///    shared[tidx][k]. The loop-free variant (a[idx][idy], after the
///    thread block has been grown to 16x16) distributes the staging over
///    tidy instead of an l loop.
///
///  * Pattern H ("misaligned / halo"): the subscript is idx plus small
///    offsets (img[idy+ky][idx+kx], a[2*idx+1]). The union of coalesced
///    segments covering the footprint is staged and the access becomes
///    shared[m*tidx + offset].
///
/// Loads whose staged data would have no reuse are left unconverted
/// (Section 3.4's gating rule). Non-coalesced stores are not converted
/// (the tp kernel is handled by the idx/idy exchange in the driver).
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_CORE_COALESCETRANSFORM_H
#define GPUC_CORE_COALESCETRANSFORM_H

#include "core/Coalescing.h"
#include "support/Diagnostics.h"

namespace gpuc {

/// What kind of staging produced a shared array (block merge treats them
/// differently).
enum class StagingKind { PatternA, PatternV, PatternVNoLoop, PatternH };

/// One staged conversion, recorded for the merge passes.
struct StagingInfo {
  StagingKind Kind;
  DeclStmt *SharedDecl = nullptr;
  /// The copy statements (global -> shared); for Pattern V this is the
  /// assignment inside the introduced l loop.
  std::vector<AssignStmt *> Stores;
  /// The introduced staging loop (Pattern V with loop), if any.
  ForStmt *StageLoop = nullptr;
  /// The restructured home loop (outer, 16-stepping), if any.
  ForStmt *HomeLoop = nullptr;
  std::string ArrayName;
  /// Element stride multiplier of a Pattern H staging (1 for halo loads,
  /// 2/4/8 for strided pair loads like a[2*idx]).
  int Mult = 1;
};

/// Result of the conversion pass.
struct CoalesceResult {
  bool Changed = false;
  std::vector<StagingInfo> Stagings;
  /// Loops restructured into (outer step-16, inner k) form, with the inner
  /// iterator name.
  std::vector<std::pair<ForStmt *, std::string>> RestructuredLoops;
  int ConvertedLoads = 0;
  int SkippedLoads = 0;       // non-coalesced loads left alone (no reuse)
  int UncoalescedStores = 0;  // diagnosable but not converted
  /// True if any statement of the kernel was a staging store (used by the
  /// G2S/G2R classification of Section 3.5.3).
  bool isStagingStore(const Stmt *S) const {
    for (const StagingInfo &SI : Stagings)
      for (const AssignStmt *St : SI.Stores)
        if (St == S)
          return true;
    return false;
  }
};

/// Runs the conversion on \p K (launch configuration must already be the
/// post-check one, blocks of 16 threads along X). Allocates in \p Ctx.
CoalesceResult convertNonCoalesced(KernelFunction &K, ASTContext &Ctx,
                                   DiagnosticsEngine &Diags);

} // namespace gpuc

#endif // GPUC_CORE_COALESCETRANSFORM_H

//===-- core/BlockMerge.h - Thread-block merge ------------------*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.5.1: merges N neighboring thread blocks into one. Along X,
/// the block dimension grows N-fold, redundant global-to-shared staging
/// loads get an `if (tidx < oldBlockDim)` guard (Figure 5), and per-half-
/// warp staging tiles (Pattern V) grow an extra row block per half warp.
/// This is the compiler's way of achieving loop tiling.
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_CORE_BLOCKMERGE_H
#define GPUC_CORE_BLOCKMERGE_H

#include "core/CoalesceTransform.h"

namespace gpuc {

/// Merges \p N neighboring blocks along X. \returns false (no change) when
/// the grid does not divide or resources make it pointless.
bool blockMergeX(KernelFunction &K, ASTContext &Ctx, CoalesceResult &CR,
                 int N);

/// Merges \p N neighboring blocks along Y (used before coalescing, e.g. to
/// form the 16x16 tile of the transpose pipeline). Only legal while the
/// kernel has no staging that depends on the block shape.
bool blockMergeY(KernelFunction &K, int N);

} // namespace gpuc

#endif // GPUC_CORE_BLOCKMERGE_H

//===-- core/Fusion.cpp - Kernel fusion for pipelines ---------------------===//

#include "core/Fusion.h"

#include "ast/Clone.h"
#include "ast/Subst.h"
#include "ast/Walk.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <set>

using namespace gpuc;

const char *gpuc::fusePlacementName(FusePlacement P) {
  switch (P) {
  case FusePlacement::None:
    return "none";
  case FusePlacement::Register:
    return "register";
  case FusePlacement::SharedStage:
    return "shared-stage";
  }
  return "?";
}

/// The fused staging tile is one half warp wide, like every staged tile
/// this compiler emits (Section 3.2's coalesced segment width).
static const int TileW = 16;

static bool isBuiltinId(const Expr *E, BuiltinId Id) {
  const auto *B = dyn_cast<BuiltinRef>(E);
  return B && B->id() == Id;
}

/// Matches idx, idx + c, idx - c, c + idx; \p C receives the offset.
static bool constOffsetOfIdx(const Expr *E, int &C) {
  if (isBuiltinId(E, BuiltinId::Idx)) {
    C = 0;
    return true;
  }
  const auto *B = dyn_cast<Binary>(E);
  if (!B)
    return false;
  const Expr *L = B->lhs();
  const Expr *R = B->rhs();
  if (B->op() == BinOp::Add) {
    if (isBuiltinId(L, BuiltinId::Idx) && isa<IntLit>(R)) {
      C = static_cast<int>(cast<IntLit>(R)->value());
      return true;
    }
    if (isa<IntLit>(L) && isBuiltinId(R, BuiltinId::Idx)) {
      C = static_cast<int>(cast<IntLit>(L)->value());
      return true;
    }
    return false;
  }
  if (B->op() == BinOp::Sub && isBuiltinId(L, BuiltinId::Idx) &&
      isa<IntLit>(R)) {
    C = -static_cast<int>(cast<IntLit>(R)->value());
    return true;
  }
  return false;
}

/// True when \p R addresses exactly its thread's element of a rank-\p Rank
/// array: [idx] or [idy][idx].
static bool isElementwiseRef(const ArrayRef *R, size_t Rank) {
  if (R->numIndices() != Rank)
    return false;
  if (Rank == 1)
    return isBuiltinId(R->index(0), BuiltinId::Idx);
  if (Rank == 2)
    return isBuiltinId(R->index(0), BuiltinId::Idy) &&
           isBuiltinId(R->index(1), BuiltinId::Idx);
  return false;
}

/// Collects local names declared in \p B: scalar/shared decls and loop
/// iterators, in pre-order (deduplicated, first occurrence wins).
static std::vector<std::string> collectLocalNames(CompoundStmt *B) {
  std::vector<std::string> Names;
  std::set<std::string> Seen;
  forEachStmt(B, [&](Stmt *S) {
    std::string N;
    if (auto *D = dyn_cast<DeclStmt>(S))
      N = D->name();
    else if (auto *F = dyn_cast<ForStmt>(S))
      N = F->iterName();
    if (!N.empty() && Seen.insert(N).second)
      Names.push_back(N);
  });
  return Names;
}

FusionDecision gpuc::analyzeFusion(const KernelFunction &Producer,
                                   const KernelFunction &Consumer,
                                   const DeviceSpec &Dev) {
  FusionDecision D;

  // -- The intermediate: the producer's single output array must be an
  // input array of the consumer with the same element type and shape.
  std::vector<const ParamDecl *> POuts;
  for (const ParamDecl &P : Producer.params())
    if (P.IsOutput)
      POuts.push_back(&P);
  if (POuts.size() != 1) {
    D.Reason = "producer must have exactly one output array";
    return D;
  }
  const ParamDecl *T = POuts.front();
  if (T->Dims.size() > 2) {
    D.Reason = strFormat("intermediate '%s' has rank > 2", T->Name.c_str());
    return D;
  }
  D.Intermediate = T->Name;
  const ParamDecl *CT = Consumer.findParam(T->Name);
  if (!CT || !CT->IsArray) {
    D.Reason = strFormat("consumer has no array parameter '%s'",
                         T->Name.c_str());
    return D;
  }
  if (CT->IsOutput) {
    D.Reason = strFormat("consumer also writes the intermediate '%s'",
                         T->Name.c_str());
    return D;
  }
  if (!(CT->ElemTy == T->ElemTy) || CT->Dims != T->Dims) {
    D.Reason = strFormat("intermediate '%s' has mismatched type or shape "
                         "between the stages",
                         T->Name.c_str());
    return D;
  }

  // -- Same-named parameters are the same buffer; their declarations must
  // agree, and the consumer must not overwrite anything the producer reads
  // (fusion interleaves the two bodies per element).
  for (const ParamDecl &P : Producer.params()) {
    if (P.Name == T->Name)
      continue;
    const ParamDecl *C = Consumer.findParam(P.Name);
    if (!C)
      continue;
    if (C->IsArray != P.IsArray || !(C->ElemTy == P.ElemTy) ||
        C->Dims != P.Dims) {
      D.Reason = strFormat("parameter '%s' has mismatched type or shape "
                           "between the stages",
                           P.Name.c_str());
      return D;
    }
    if (C->IsArray && C->IsOutput) {
      D.Reason = strFormat("consumer writes array '%s' that the producer "
                           "reads",
                           P.Name.c_str());
      return D;
    }
  }
  for (const auto &[Name, V] : Producer.scalarBindings()) {
    auto It = Consumer.scalarBindings().find(Name);
    if (It != Consumer.scalarBindings().end() && It->second != V) {
      D.Reason = strFormat("scalar '%s' bound to different values in the "
                           "stages",
                           Name.c_str());
      return D;
    }
  }

  // -- Producer structure: a straight-line/loop body whose only effect is
  // one top-level element-wise store of the intermediate.
  const char *PReason = nullptr;
  forEachStmt(Producer.body(), [&](Stmt *S) {
    if (PReason)
      return;
    if (isa<SyncStmt>(S))
      PReason = "producer contains a barrier";
    else if (isa<WhileStmt>(S))
      PReason = "producer contains a while loop";
    else if (auto *DS = dyn_cast<DeclStmt>(S); DS && DS->isShared())
      PReason = "producer uses shared memory";
  });
  if (PReason) {
    D.Reason = PReason;
    return D;
  }
  int RefsToT = 0;
  forEachExpr(Producer.body(), [&](Expr *E) {
    auto *R = dyn_cast<ArrayRef>(E);
    if (R && R->base() == T->Name)
      ++RefsToT;
  });
  const AssignStmt *Store = nullptr;
  int TopStores = 0;
  for (Stmt *S : Producer.body()->body()) {
    auto *A = dyn_cast<AssignStmt>(S);
    if (!A)
      continue;
    auto *R = dyn_cast<ArrayRef>(A->lhs());
    if (R && R->base() == T->Name) {
      Store = A;
      ++TopStores;
    }
  }
  if (TopStores != 1 || RefsToT != 1) {
    D.Reason = strFormat("producer must store '%s' exactly once at top "
                         "level and never read it",
                         T->Name.c_str());
    return D;
  }
  const auto *StoreRef = cast<ArrayRef>(Store->lhs());
  if (Store->op() != AssignOp::Assign || StoreRef->vecWidth() != 1 ||
      !isElementwiseRef(StoreRef, T->Dims.size())) {
    D.Reason = strFormat("producer store of '%s' is not a plain "
                         "element-wise assignment",
                         T->Name.c_str());
    return D;
  }
  long long TX = T->Dims.back();
  long long TY = T->Dims.size() == 2 ? T->Dims[0] : 1;
  if (Producer.workDomainX() != TX || Producer.workDomainY() != TY) {
    D.Reason = strFormat("producer domain does not cover the intermediate "
                         "'%s'",
                         T->Name.c_str());
    return D;
  }

  // -- Consumer reads of the intermediate.
  bool WritesT = false;
  forEachStmt(Consumer.body(), [&](Stmt *S) {
    auto *A = dyn_cast<AssignStmt>(S);
    if (!A)
      return;
    auto *R = dyn_cast<ArrayRef>(A->lhs());
    if (R && R->base() == T->Name)
      WritesT = true;
  });
  if (WritesT) {
    D.Reason = strFormat("consumer also writes the intermediate '%s'",
                         T->Name.c_str());
    return D;
  }
  std::vector<const ArrayRef *> Reads;
  forEachExpr(Consumer.body(), [&](Expr *E) {
    auto *R = dyn_cast<ArrayRef>(E);
    if (R && R->base() == T->Name)
      Reads.push_back(R);
  });
  if (Reads.empty()) {
    D.Reason = strFormat("consumer never reads the intermediate '%s'",
                         T->Name.c_str());
    return D;
  }
  for (const ArrayRef *R : Reads) {
    if (R->vecWidth() != 1) {
      D.Reason = strFormat("consumer reads '%s' with a vector access",
                           T->Name.c_str());
      return D;
    }
  }

  const bool SameDomain =
      Consumer.workDomainX() == Producer.workDomainX() &&
      Consumer.workDomainY() == Producer.workDomainY();
  bool AllElem = true;
  for (const ArrayRef *R : Reads)
    AllElem &= isElementwiseRef(R, T->Dims.size());
  if (AllElem && SameDomain) {
    D.Legal = true;
    D.Placement = FusePlacement::Register;
    D.Reason = "element-wise dataflow; intermediate held in a register";
    return D;
  }

  // -- Overlapping-segment pattern: a 1-D consumer reading idx + c. The
  // producer's values for the block's segment plus halo are staged into a
  // shared tile (the DataSharing pass's G2S reuse, applied across the
  // kernel boundary).
  if (T->Dims.size() != 1) {
    D.Reason = strFormat("consumer reads '%s' non-element-wise and the "
                         "intermediate is not 1-D",
                         T->Name.c_str());
    return D;
  }
  int MinC = 0, MaxC = 0;
  for (const ArrayRef *R : Reads) {
    int C = 0;
    if (R->numIndices() != 1 || !constOffsetOfIdx(R->index(0), C)) {
      D.Reason = strFormat("consumer read of '%s' depends on a loop "
                           "variable or non-affine expression; fusing it "
                           "would need an inter-block barrier",
                           T->Name.c_str());
      return D;
    }
    MinC = std::min(MinC, C);
    MaxC = std::max(MaxC, C);
  }
  if (!SameDomain || Consumer.workDomainY() != 1) {
    D.Reason = "overlapping-segment staging needs matching 1-D domains";
    return D;
  }
  if (Consumer.workDomainX() % TileW != 0) {
    D.Reason = strFormat("domain %lld is not divisible by the %d-wide "
                         "staging tile",
                         Consumer.workDomainX(), TileW);
    return D;
  }
  if (Producer.body()->body().size() != 1) {
    D.Reason = "staged fusion needs a single-statement element-wise "
               "producer";
    return D;
  }
  bool BadBuiltin = anyExprIn(Store->rhs(), [](const Expr *E) {
    const auto *B = dyn_cast<BuiltinRef>(E);
    return B && B->id() != BuiltinId::Idx;
  });
  if (BadBuiltin) {
    D.Reason = "producer value depends on thread or block indices other "
               "than idx";
    return D;
  }
  int HaloLo = std::min(0, MinC);
  int HaloHi = std::max(0, MaxC);
  if (HaloHi - HaloLo > TileW) {
    D.Reason = strFormat("halo [%d, %d] is wider than one staging tile",
                         HaloLo, HaloHi);
    return D;
  }
  long long W = TileW + HaloHi - HaloLo;
  long long Bytes = W * T->ElemTy.sizeInBytes() + Consumer.sharedBytes();
  if (Bytes > Dev.SharedBytesPerSM) {
    D.Reason = strFormat("staging tile needs %lld shared bytes; budget is "
                         "%d",
                         Bytes, Dev.SharedBytesPerSM);
    return D;
  }
  D.Legal = true;
  D.Placement = FusePlacement::SharedStage;
  D.StagingBytes = Bytes;
  D.HaloLo = HaloLo;
  D.HaloHi = HaloHi;
  D.Reason = strFormat("overlapping-segment consumer; %lld-byte shared "
                       "tile, halo [%d, %d]",
                       Bytes, HaloLo, HaloHi);
  return D;
}

KernelFunction *gpuc::fuseKernels(Module &M, const KernelFunction &Producer,
                                  const KernelFunction &Consumer,
                                  const FusionDecision &Decision,
                                  const std::string &FusedName) {
  if (!Decision.Legal)
    return nullptr;
  ASTContext &Ctx = M.context();
  KernelFunction *F = M.createKernel(FusedName, nullptr);

  // Parameters: the producer's inputs, then the consumer's parameters,
  // minus the intermediate; same-named parameters collapse (the analysis
  // verified they agree).
  for (const ParamDecl &P : Producer.params()) {
    if (P.Name == Decision.Intermediate)
      continue;
    ParamDecl NP = P;
    NP.IsOutput = false;
    F->params().push_back(std::move(NP));
  }
  for (const ParamDecl &C : Consumer.params()) {
    if (C.Name == Decision.Intermediate || F->findParam(C.Name))
      continue;
    F->params().push_back(C);
  }
  for (const auto &[Name, V] : Producer.scalarBindings())
    F->bindScalar(Name, V);
  for (const auto &[Name, V] : Consumer.scalarBindings())
    F->bindScalar(Name, V);

  CompoundStmt *PB = cloneCompound(Ctx, Producer.body());
  CompoundStmt *CB = cloneCompound(Ctx, Consumer.body());

  // Rename locals on both sides so the merged scope has no collisions
  // (producer locals vs consumer locals, and either vs the other side's
  // parameters). Seeding Taken with every original local keeps a rename
  // from capturing an existing name.
  std::set<std::string> Taken;
  for (const ParamDecl &P : F->params())
    Taken.insert(P.Name);
  Taken.insert(Decision.Intermediate);
  std::vector<std::string> PLocals = collectLocalNames(PB);
  std::vector<std::string> CLocals = collectLocalNames(CB);
  for (const std::string &N : PLocals)
    Taken.insert(N);
  for (const std::string &N : CLocals)
    Taken.insert(N);
  auto uniqueName = [&Taken](std::string Base) {
    while (Taken.count(Base))
      Base += "_";
    Taken.insert(Base);
    return Base;
  };
  for (const std::string &N : PLocals)
    renameVar(PB, N, uniqueName(N + "_p"));
  for (const std::string &N : CLocals)
    renameVar(CB, N, uniqueName(N + "_c"));

  std::vector<Stmt *> Body;
  if (Decision.Placement == FusePlacement::Register) {
    // Replace the producer's store with a local holding the value; the
    // consumer's reads become references to it.
    std::string Tmp = uniqueName(Decision.Intermediate + "_val");
    Type ElemTy = Type::floatTy();
    for (Stmt *S : PB->body()) {
      auto *A = dyn_cast<AssignStmt>(S);
      auto *R = A ? dyn_cast<ArrayRef>(A->lhs()) : nullptr;
      if (R && R->base() == Decision.Intermediate) {
        ElemTy = R->type();
        Body.push_back(Ctx.declScalar(Tmp, ElemTy, A->rhs()));
      } else {
        Body.push_back(S);
      }
    }
    rewriteExprs(CB, [&](Expr *E) -> Expr * {
      auto *R = dyn_cast<ArrayRef>(E);
      if (R && R->base() == Decision.Intermediate)
        return Ctx.varRef(Tmp, R->type());
      return nullptr;
    });
  } else {
    // Shared staging: every thread stages the producer's value for its
    // tile slot (and the halo tail), then the block synchronizes and the
    // consumer reads the tile instead of global memory.
    const ParamDecl *T = Producer.findParam(Decision.Intermediate);
    const long long N = T->Dims[0];
    const int W = TileW + Decision.HaloHi - Decision.HaloLo;
    const std::string Sh = uniqueName(Decision.Intermediate + "_sh");
    const AssignStmt *Store = cast<AssignStmt>(PB->body().front());
    Expr *RHS = Store->rhs();

    Body.push_back(Ctx.declShared(Sh, T->ElemTy, {W}));
    auto stagePos = [&](int Shift) {
      return Ctx.addConst(
          Ctx.add(Ctx.mul(Ctx.builtin(BuiltinId::Bidx), Ctx.intLit(TileW)),
                  Ctx.builtin(BuiltinId::Tidx)),
          Decision.HaloLo + Shift);
    };
    auto stageRound = [&](const std::string &Pos, int SlotBase,
                          Expr *ExtraCond) {
      Expr *Guard = Ctx.land(
          Ctx.ge(Ctx.varRef(Pos, Type::intTy()), Ctx.intLit(0)),
          Ctx.lt(Ctx.varRef(Pos, Type::intTy()), Ctx.intLit(N)));
      if (ExtraCond)
        Guard = Ctx.land(ExtraCond, Guard);
      Expr *Val = substBuiltinInExpr(Ctx, cloneExpr(Ctx, RHS),
                                     BuiltinId::Idx,
                                     Ctx.varRef(Pos, Type::intTy()));
      Stmt *St = Ctx.assign(
          Ctx.arrayRef(Sh,
                       {Ctx.addConst(Ctx.builtin(BuiltinId::Tidx), SlotBase)},
                       T->ElemTy),
          Val);
      Body.push_back(Ctx.ifStmt(Guard, Ctx.compound({St})));
    };
    const std::string PosM = uniqueName(Decision.Intermediate + "_pos");
    Body.push_back(Ctx.declScalar(PosM, Type::intTy(), stagePos(0)));
    stageRound(PosM, 0, nullptr);
    if (W > TileW) {
      const std::string PosT = uniqueName(Decision.Intermediate + "_post");
      Body.push_back(Ctx.declScalar(PosT, Type::intTy(), stagePos(TileW)));
      stageRound(PosT, TileW,
                 Ctx.lt(Ctx.builtin(BuiltinId::Tidx), Ctx.intLit(W - TileW)));
    }
    Body.push_back(Ctx.syncThreads());
    rewriteExprs(CB, [&](Expr *E) -> Expr * {
      auto *R = dyn_cast<ArrayRef>(E);
      if (!R || R->base() != Decision.Intermediate)
        return nullptr;
      int C = 0;
      constOffsetOfIdx(R->index(0), C);
      return Ctx.arrayRef(
          Sh,
          {Ctx.addConst(Ctx.builtin(BuiltinId::Tidx), C - Decision.HaloLo)},
          R->type());
    });
  }
  for (Stmt *S : CB->body())
    Body.push_back(S);
  F->setBody(Ctx.compound(std::move(Body)));

  // The consumer's domain and the parser's naive default launch.
  F->setWorkDomain(Consumer.workDomainX(), Consumer.workDomainY());
  LaunchConfig &L = F->launch();
  L.BlockDimX = static_cast<int>(std::min<long long>(16, F->workDomainX()));
  L.BlockDimY = 1;
  L.GridDimX = (F->workDomainX() + L.BlockDimX - 1) / L.BlockDimX;
  L.GridDimY = (F->workDomainY() + L.BlockDimY - 1) / L.BlockDimY;
  return F;
}

PipelineFusion gpuc::fusePipeline(
    Module &M, const std::vector<const KernelFunction *> &Stages,
    const DeviceSpec &Dev, const std::string &FusedName) {
  PipelineFusion R;
  if (Stages.size() < 2) {
    R.Reason = "a pipeline needs at least two stages";
    return R;
  }
  const KernelFunction *Cur = Stages.front();
  KernelFunction *Built = nullptr;
  for (size_t I = 1; I < Stages.size(); ++I) {
    FusionDecision D = analyzeFusion(*Cur, *Stages[I], Dev);
    R.Steps.push_back(D);
    if (!D.Legal) {
      R.Reason = strFormat("%s -> %s: %s", Cur->name().c_str(),
                           Stages[I]->name().c_str(), D.Reason.c_str());
      return R;
    }
    std::string Name = I + 1 == Stages.size()
                           ? FusedName
                           : FusedName + "_s" + std::to_string(I);
    Built = fuseKernels(M, *Cur, *Stages[I], D, Name);
    R.UsedSharedStage |= D.Placement == FusePlacement::SharedStage;
    Cur = Built;
  }
  R.Legal = true;
  R.Fused = Built;
  return R;
}

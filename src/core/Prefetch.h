//===-- core/Prefetch.h - Data prefetching ----------------------*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.6 (Figure 8): overlaps the global-to-shared staging load of
/// the next loop iteration with the current iteration's computation using
/// a register temporary. Skipped when the kernel's register pressure is
/// already high — the paper observes that after thread merge the registers
/// are usually spent, which is why prefetching contributes little in
/// Figure 12.
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_CORE_PREFETCH_H
#define GPUC_CORE_PREFETCH_H

#include "ast/Kernel.h"

namespace gpuc {

/// Register budget above which prefetching is skipped.
constexpr int PrefetchRegisterBudget = 20;

/// Applies the Figure 8 transformation to every direct global-to-shared
/// staging store in a 16-stepping loop. \returns number of prefetches
/// inserted (0 when skipped).
int insertPrefetch(KernelFunction &K, ASTContext &Ctx);

} // namespace gpuc

#endif // GPUC_CORE_PREFETCH_H

//===-- core/DataSharing.h - Sharing analysis & merge planning --*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.4/3.5.3: detects data sharing between neighboring thread
/// blocks by overlapping the address ranges of coalesced segments, and
/// picks between thread-block merge (G2S sharing -> shared-memory reuse)
/// and thread merge (G2R sharing -> register reuse). Blocks with too few
/// threads get a block merge even without sharing.
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_CORE_DATASHARING_H
#define GPUC_CORE_DATASHARING_H

#include "core/CoalesceTransform.h"

namespace gpuc {

/// One load classified for sharing.
struct SharingRecord {
  const ArrayRef *Ref = nullptr;
  bool IsG2S = false; ///< load feeding a shared-memory staging store
  bool SharedAlongX = false;
  bool SharedAlongY = false;
};

/// The merge directions Section 3.5.3's heuristic selects.
struct MergePlan {
  bool BlockMergeX = false;
  bool BlockMergeY = false;
  bool ThreadMergeX = false;
  bool ThreadMergeY = false;
  /// Set when a block merge is only needed to reach enough threads.
  bool BlockMergeForThreads = false;
  std::vector<SharingRecord> Records;

  bool anyBlockMerge() const { return BlockMergeX || BlockMergeY; }
  bool anyThreadMerge() const { return ThreadMergeX || ThreadMergeY; }
};

/// Analyzes \p K (after coalescing conversion \p CR) and plans merges.
MergePlan planMerges(KernelFunction &K, const CoalesceResult &CR);

} // namespace gpuc

#endif // GPUC_CORE_DATASHARING_H

//===-- core/CoalesceTransform.cpp - Non-coalesced -> coalesced -----------===//

#include "core/CoalesceTransform.h"

#include "ast/Clone.h"
#include "ast/Subst.h"
#include "ast/Walk.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <map>

using namespace gpuc;

namespace {

/// Where a statement lives: its parent compound and position, plus whether
/// any ancestor is an if (staging cannot be hoisted across divergence).
struct StmtPlace {
  CompoundStmt *Parent = nullptr;
  size_t Index = 0;
  bool UnderIf = false;
  std::vector<ForStmt *> LoopChain; // outermost first
};

class PlacementMap {
public:
  explicit PlacementMap(CompoundStmt *Root) { walk(Root, false, {}); }

  const StmtPlace *find(const Stmt *S) const {
    auto It = Places.find(S);
    return It == Places.end() ? nullptr : &It->second;
  }

private:
  void walk(CompoundStmt *C, bool UnderIf, std::vector<ForStmt *> Loops) {
    if (!C)
      return;
    for (size_t I = 0; I < C->body().size(); ++I) {
      Stmt *S = C->body()[I];
      Places[S] = {C, I, UnderIf, Loops};
      if (auto *If = dyn_cast<IfStmt>(S)) {
        walk(If->thenBody(), true, Loops);
        walk(If->elseBody(), true, Loops);
      } else if (auto *F = dyn_cast<ForStmt>(S)) {
        auto Inner = Loops;
        Inner.push_back(F);
        walk(F->body(), UnderIf, Inner);
      }
    }
  }

  std::map<const Stmt *, StmtPlace> Places;
};

void insertBefore(CompoundStmt *Parent, size_t Index,
                  const std::vector<Stmt *> &NewStmts) {
  Parent->body().insert(Parent->body().begin() +
                            static_cast<long>(Index),
                        NewStmts.begin(), NewStmts.end());
}

/// Replaces the expression node \p Old (by identity) anywhere under \p Root.
void replaceExprPtr(Stmt *Root, const Expr *Old, Expr *Repl) {
  rewriteExprs(Root, [&](Expr *E) -> Expr * {
    return E == Old ? Repl : nullptr;
  });
}

/// True if the affine form is exactly one loop term with coefficient 1.
bool isPureLoopIndex(const AffineExpr &A, std::string &LoopName) {
  if (A.Const != 0 || A.CTidx != 0 || A.CTidy != 0 || A.CBidx != 0 ||
      A.CBidy != 0 || A.LoopCoeffs.size() != 1)
    return false;
  const auto &[Name, C] = *A.LoopCoeffs.begin();
  if (C != 1)
    return false;
  LoopName = Name;
  return true;
}

/// True if the affine form is m * <loop> with m in {1,2,4,8} — the
/// paper's A[m*i+n] class (Section 3.3 unrolls such loops by
/// 16/GCD(m,16); m > 8 has too little reuse and is skipped).
bool isScaledLoopIndex(const AffineExpr &A, std::string &LoopName,
                       int &Mult) {
  if (A.Const != 0 || A.CTidx != 0 || A.CTidy != 0 || A.CBidx != 0 ||
      A.CBidy != 0 || A.LoopCoeffs.size() != 1)
    return false;
  const auto &[Name, C] = *A.LoopCoeffs.begin();
  if (C != 1 && C != 2 && C != 4 && C != 8)
    return false;
  LoopName = Name;
  Mult = static_cast<int>(C);
  return true;
}

/// True if the affine form is exactly idx (tidx + BlockDimX*bidx).
bool isIdxForm(const AffineExpr &A, const KernelFunction &K, int Mult = 1) {
  return A.Const == 0 && A.CTidy == 0 && A.CBidy == 0 && !A.hasLoopTerms() &&
         A.CTidx == Mult && A.CBidx == Mult * K.launch().BlockDimX;
}

/// True if the affine form is exactly idy.
bool isIdyForm(const AffineExpr &A, const KernelFunction &K) {
  return A.Const == 0 && A.CTidx == 0 && A.CBidx == 0 && !A.hasLoopTerms() &&
         A.CTidy == 1 && A.CBidy == K.launch().BlockDimY;
}

/// Segment-alignment of everything in the address except the given loop
/// term and the tidx term: required for the staged copy to coalesce.
bool stagedSourceAligned(const AccessInfo &A, const std::string &SkipLoop,
                         long long Seg) {
  const AffineExpr &Addr = A.Addr;
  if (Addr.Const % Seg || Addr.CBidx % Seg || Addr.CBidy % Seg ||
      Addr.CTidy % Seg)
    return false;
  for (const auto &[Name, Coeff] : Addr.LoopCoeffs) {
    if (Name == SkipLoop || Coeff == 0)
      continue;
    const LoopInfo *L = A.loopNamed(Name);
    if (!L || !L->Resolved)
      return false;
    if ((Coeff * L->Init) % Seg || (Coeff * L->Step) % Seg)
      return false;
  }
  return true;
}

} // namespace

CoalesceResult gpuc::convertNonCoalesced(KernelFunction &K, ASTContext &Ctx,
                                         DiagnosticsEngine &Diags) {
  CoalesceResult R;
  auto Idx = [&] { return Ctx.builtin(BuiltinId::Idx); };
  auto Idy = [&] { return Ctx.builtin(BuiltinId::Idy); };
  auto Tidx = [&] { return Ctx.builtin(BuiltinId::Tidx); };
  auto Tidy = [&] { return Ctx.builtin(BuiltinId::Tidy); };

  //=== Phase 1: loop-carried patterns (A and V) ==========================//

  std::vector<AccessInfo> Accesses = collectGlobalAccesses(K);

  // Loops that must be restructured, with their pattern-A/V members.
  struct LoopWork {
    ForStmt *Loop = nullptr;
    /// Element stride of the Pattern A members (all must agree; decided
    /// by the first member). The loop unrolls by 16/Mult.
    int Mult = 1;
    bool MultSet = false;
    std::vector<AccessInfo> PatternA;
    std::vector<AccessInfo> PatternV;
  };
  std::vector<LoopWork> Work;
  auto WorkFor = [&](ForStmt *L) -> LoopWork & {
    for (LoopWork &W : Work)
      if (W.Loop == L)
        return W;
    LoopWork NewWork;
    NewWork.Loop = L;
    Work.push_back(std::move(NewWork));
    return Work.back();
  };

  for (const AccessInfo &A : Accesses) {
    if (!A.Resolved)
      continue;
    CoalesceInfo CI = checkCoalescing(A, K);
    if (CI.Coalesced)
      continue;
    if (A.IsStore) {
      ++R.UncoalescedStores;
      continue;
    }
    const AffineExpr &Last = A.DimAffine.back();
    const long long Seg = 16LL * A.ElemBytes;

    // Pattern A: (possibly scaled) loop index in the contiguous
    // dimension: A[m*i], unrolled by 16/GCD(m,16).
    std::string LoopName;
    int Mult = 1;
    if (CI.Failure == CoalesceFailure::ZeroStride &&
        isScaledLoopIndex(Last, LoopName, Mult)) {
      const LoopInfo *L = A.loopNamed(LoopName);
      int Unroll = 16 / Mult;
      if (L && L->Resolved && L->Step == 1 &&
          (Mult * L->Init) % 16 == 0 &&
          (L->Bound - L->Init) % Unroll == 0 && L->trip() >= Unroll &&
          stagedSourceAligned(A, LoopName, Seg) && A.ElemBytes == 4) {
        LoopWork &W = WorkFor(L->Loop);
        if (!W.MultSet) {
          W.Mult = Mult;
          W.MultSet = true;
        }
        if (W.Mult == Mult) {
          W.PatternA.push_back(A);
          continue;
        }
        // Mixed strides on one loop: convert only the first stride class.
        ++R.SkippedLoads;
        continue;
      }
    }

    // Pattern V: thread id indexes rows.
    if (CI.Failure == CoalesceFailure::HighDimThread &&
        A.DimAffine.size() == 2 && isIdxForm(A.DimAffine[0], K) &&
        A.ElemBytes == 4) {
      std::string ColLoop;
      if (isPureLoopIndex(Last, ColLoop)) {
        const LoopInfo *L = A.loopNamed(ColLoop);
        if (L && L->Resolved && L->Step == 1 && L->Init % 16 == 0 &&
            (L->Bound - L->Init) % 16 == 0 && L->trip() >= 16) {
          WorkFor(L->Loop).PatternV.push_back(A);
          continue;
        }
      } else if (isIdyForm(Last, K) && K.launch().BlockDimY == 16) {
        // Loop-free tile (transpose shape), staged across tidy.
        PlacementMap Places(K.body());
        const StmtPlace *P = Places.find(A.Owner);
        if (P && !P->UnderIf) {
          std::string SV = Ctx.freshName("tile");
          auto *Decl = Ctx.declShared(SV, Type::floatTy(), {16, 17});
          Expr *Row = Ctx.add(Ctx.sub(Idx(), Tidx()), Tidy());
          Expr *Col = Ctx.add(Ctx.sub(Idy(), Tidy()), Tidx());
          auto *Src = cast<ArrayRef>(cloneExpr(Ctx, A.Ref));
          Src->setIndex(0, Row);
          Src->setIndex(1, Col);
          auto *Store = Ctx.assign(
              Ctx.arrayRef(SV, {Tidy(), Tidx()}, Type::floatTy()), Src);
          insertBefore(P->Parent, P->Index,
                       {Decl, Store, Ctx.syncThreads()});
          replaceExprPtr(K.body(), A.Ref,
                         Ctx.arrayRef(SV, {Tidx(), Tidy()},
                                      Type::floatTy()));
          StagingInfo SI;
          SI.Kind = StagingKind::PatternVNoLoop;
          SI.SharedDecl = Decl;
          SI.Stores.push_back(Store);
          SI.ArrayName = SV;
          R.Stagings.push_back(SI);
          R.Changed = true;
          ++R.ConvertedLoads;
          continue;
        }
      }
    }
    // Everything else is retried as Pattern H in phase 2 (or skipped).
  }

  // Restructure each worked loop once and build its stagings.
  for (LoopWork &W : Work) {
    ForStmt *L = W.Loop;
    const int Unroll = 16 / W.Mult; // = 16/GCD(m,16) for m in {1,2,4,8}
    std::string KName = Ctx.freshName("k");
    // i -> (i + k) inside the body only.
    Expr *IK = Ctx.add(Ctx.varRef(L->iterName(), Type::intTy()),
                       Ctx.varRef(KName, Type::intTy()));
    substVar(Ctx, L->body(), L->iterName(), IK);
    auto *Inner = Ctx.forUp(KName, Ctx.intLit(0), Ctx.intLit(Unroll),
                            Ctx.intLit(1), L->body());
    auto *NewBody = Ctx.compound();
    L->setBody(NewBody);
    L->setStep(Ctx.intLit(Unroll));
    R.RestructuredLoops.emplace_back(L, KName);

    std::vector<Stmt *> Staging;
    for (const AccessInfo &A : W.PatternA) {
      std::string SA = Ctx.freshName("shared");
      auto *Decl = Ctx.declShared(SA, Type::floatTy(), {16});
      // Source: one full segment per outer iteration. For stride 1 that
      // is the (now i+k) access with k -> tidx; for m > 1 the segment is
      // A[...][m*i + tidx] (the unrolled accesses use every m-th word).
      auto *Src = cast<ArrayRef>(cloneExpr(Ctx, A.Ref));
      Expr *SrcE;
      if (W.Mult == 1) {
        SrcE = substVarInExpr(Ctx, Src, KName, Tidx());
      } else {
        Expr *Base = Ctx.mul(Ctx.varRef(L->iterName(), Type::intTy()),
                             Ctx.intLit(W.Mult));
        Src->setIndex(Src->numIndices() - 1, Ctx.add(Base, Tidx()));
        SrcE = Src;
      }
      auto *Store = Ctx.assign(
          Ctx.arrayRef(SA, {Tidx()}, Type::floatTy()), SrcE);
      Staging.push_back(Decl);
      Staging.push_back(Store);
      Expr *ReplIdx = Ctx.varRef(KName, Type::intTy());
      if (W.Mult != 1)
        ReplIdx = Ctx.mul(ReplIdx, Ctx.intLit(W.Mult));
      replaceExprPtr(Inner, A.Ref,
                     Ctx.arrayRef(SA, {ReplIdx}, Type::floatTy()));
      StagingInfo SI;
      SI.Kind = StagingKind::PatternA;
      SI.SharedDecl = Decl;
      SI.Stores.push_back(cast<AssignStmt>(Staging.back()));
      SI.HomeLoop = L;
      SI.ArrayName = SA;
      R.Stagings.push_back(SI);
      ++R.ConvertedLoads;
    }
    for (const AccessInfo &A : W.PatternV) {
      std::string SV = Ctx.freshName("tile");
      auto *Decl = Ctx.declShared(SV, Type::floatTy(), {16, 17});
      std::string LName = Ctx.freshName("l");
      auto *Src = cast<ArrayRef>(cloneExpr(Ctx, A.Ref));
      Src->setIndex(0, Ctx.add(Ctx.sub(Idx(), Tidx()),
                               Ctx.varRef(LName, Type::intTy())));
      Src->setIndex(1, substVarInExpr(Ctx, Src->index(1), KName, Tidx()));
      auto *Store = Ctx.assign(
          Ctx.arrayRef(SV,
                       {Ctx.varRef(LName, Type::intTy()), Tidx()},
                       Type::floatTy()),
          Src);
      auto *StageBody = Ctx.compound();
      StageBody->append(Store);
      auto *StageLoop = Ctx.forUp(LName, Ctx.intLit(0), Ctx.intLit(16),
                                  Ctx.intLit(1), StageBody);
      Staging.push_back(Decl);
      Staging.push_back(StageLoop);
      replaceExprPtr(Inner, A.Ref,
                     Ctx.arrayRef(SV,
                                  {Tidx(), Ctx.varRef(KName, Type::intTy())},
                                  Type::floatTy()));
      StagingInfo SI;
      SI.Kind = StagingKind::PatternV;
      SI.SharedDecl = Decl;
      SI.Stores.push_back(Store);
      SI.StageLoop = StageLoop;
      SI.HomeLoop = L;
      SI.ArrayName = SV;
      R.Stagings.push_back(SI);
      ++R.ConvertedLoads;
    }
    for (Stmt *S : Staging)
      NewBody->append(S);
    NewBody->append(Ctx.syncThreads());
    NewBody->append(Inner);
    NewBody->append(Ctx.syncThreads());
    R.Changed = true;
  }

  //=== Phase 2: halo / misaligned / strided patterns (H) =================//

  Accesses = collectGlobalAccesses(K);
  struct HMember {
    AccessInfo Access;
    long long MinR = 0, MaxR = 0; // residual element-offset range
  };
  struct HGroup {
    std::string Key;
    int Mult = 1;
    std::vector<HMember> Members;
  };
  std::vector<HGroup> Groups;

  for (const AccessInfo &A : Accesses) {
    if (!A.Resolved || A.IsStore || A.ElemBytes != 4)
      continue;
    if (A.Param == nullptr)
      continue;
    CoalesceInfo CI = checkCoalescing(A, K);
    if (CI.Coalesced)
      continue;
    if (CI.Failure != CoalesceFailure::Misaligned &&
        CI.Failure != CoalesceFailure::BadStride) {
      ++R.SkippedLoads;
      continue;
    }
    const AffineExpr &Last = A.DimAffine.back();
    int M = static_cast<int>(Last.CTidx);
    if ((M != 1 && M != 2 && M != 4 && M != 8) ||
        Last.CBidx != M * K.launch().BlockDimX || Last.CTidy != 0 ||
        Last.CBidy != 0) {
      ++R.SkippedLoads;
      continue;
    }
    // Higher dimensions must be uniform across the staging block: the
    // shared buffer is indexed by tidx only, so a row expression that
    // varies with tidx — or with tidy while the block is two-dimensional —
    // would make threads in different rows overwrite each other's segment
    // (a write-write race on the staging array).
    bool HigherOk = true;
    for (size_t D = 0; D + 1 < A.DimAffine.size(); ++D)
      if (A.DimAffine[D].CTidx != 0 ||
          (A.DimAffine[D].CTidy != 0 && K.launch().BlockDimY > 1))
        HigherOk = false;
    if (!HigherOk) {
      ++R.SkippedLoads;
      continue;
    }
    // Residual range of the contiguous dimension (without the idx part).
    long long MinR = Last.Const, MaxR = Last.Const;
    bool RangeOk = true;
    for (const auto &[Name, Coeff] : Last.LoopCoeffs) {
      if (Coeff == 0)
        continue;
      const LoopInfo *L = A.loopNamed(Name);
      if (!L || !L->Resolved || Coeff < 0) {
        RangeOk = false;
        break;
      }
      long long LastVal = L->Init + (L->trip() - 1) * L->Step;
      MinR += Coeff * L->Init;
      MaxR += Coeff * LastVal;
    }
    if (!RangeOk || MaxR - MinR > 48) {
      ++R.SkippedLoads;
      continue;
    }
    // Group key: array plus the structural row expressions.
    std::string Key = A.Ref->base();
    for (size_t D = 0; D + 1 < A.DimAffine.size(); ++D)
      Key += "|" + A.DimAffine[D].str();
    Key += strFormat("|m%d", M);
    HGroup *G = nullptr;
    for (HGroup &Existing : Groups)
      if (Existing.Key == Key) {
        G = &Existing;
        break;
      }
    if (!G) {
      Groups.push_back({Key, M, {}});
      G = &Groups.back();
    }
    G->Members.push_back({A, MinR, MaxR});
  }

  for (HGroup &G : Groups) {
    // Rebuilt per group: earlier insertions shift positions.
    PlacementMap Places(K.body());
    // Reuse gate (Section 3.4): staging one lone constant-offset access
    // buys nothing.
    bool HasLoopResidual = false;
    for (const HMember &M : G.Members)
      if (M.MaxR != M.MinR)
        HasLoopResidual = true;
    if (G.Members.size() < 2 && !HasLoopResidual) {
      R.SkippedLoads += static_cast<int>(G.Members.size());
      continue;
    }
    long long MinR = G.Members.front().MinR;
    long long MaxR = G.Members.front().MaxR;
    for (const HMember &M : G.Members) {
      MinR = std::min(MinR, M.MinR);
      MaxR = std::max(MaxR, M.MaxR);
    }
    long long AlignedLow = MinR >= 0 ? MinR / 16 * 16 : -((-MinR + 15) / 16 * 16);
    long long High = G.Mult * 15 + MaxR;
    long long W = (High - AlignedLow + 16) / 16 * 16;
    int Segs = static_cast<int>(W / 16);

    // Anchor: before the outermost loop whose iterator appears in a
    // residual; otherwise before the first member's statement.
    const AccessInfo &A0 = G.Members.front().Access;
    Stmt *Anchor = A0.Owner;
    for (const LoopInfo &L : A0.Loops) {
      bool Used = false;
      for (const HMember &M : G.Members)
        if (M.Access.DimAffine.back().loopCoeff(L.Loop->iterName()) != 0)
          Used = true;
      if (Used) {
        Anchor = L.Loop;
        break;
      }
    }
    const StmtPlace *P = Places.find(Anchor);
    if (!P || P->UnderIf) {
      R.SkippedLoads += static_cast<int>(G.Members.size());
      continue;
    }

    std::string SH = Ctx.freshName("halo");
    auto *Decl =
        Ctx.declShared(SH, Type::floatTy(), {static_cast<int>(W)});
    std::vector<Stmt *> NewStmts{Decl};
    StagingInfo SI;
    SI.Kind = StagingKind::PatternH;
    SI.SharedDecl = Decl;
    SI.ArrayName = SH;
    SI.Mult = G.Mult;
    for (int J = 0; J < Segs; ++J) {
      auto *Src = cast<ArrayRef>(cloneExpr(Ctx, A0.Ref));
      Expr *Base = Ctx.sub(Idx(), Tidx());
      if (G.Mult != 1)
        Base = Ctx.mul(Base, Ctx.intLit(G.Mult));
      Expr *LastIdx =
          Ctx.add(Ctx.addConst(Base, AlignedLow + J * 16), Tidx());
      Src->setIndex(Src->numIndices() - 1, LastIdx);
      auto *Store = Ctx.assign(
          Ctx.arrayRef(SH, {Ctx.addConst(Tidx(), J * 16)},
                       Type::floatTy()),
          Src);
      NewStmts.push_back(Store);
      SI.Stores.push_back(Store);
    }
    NewStmts.push_back(Ctx.syncThreads());
    insertBefore(P->Parent, P->Index, NewStmts);
    // Re-staging hazard: if the staging repeats inside an enclosing loop,
    // the consumers must finish before the next round overwrites it.
    if (!P->LoopChain.empty()) {
      // Anchor index shifted by the inserted statements.
      size_t AnchorIdx = P->Index + NewStmts.size();
      P->Parent->body().insert(
          P->Parent->body().begin() + static_cast<long>(AnchorIdx + 1),
          Ctx.syncThreads());
    }
    for (const HMember &M : G.Members) {
      // Replacement index: m*tidx + (residual expr) - alignedLow, where
      // the residual is the original contiguous index with idx zeroed.
      Expr *Residual = substBuiltinInExpr(
          Ctx, cloneExpr(Ctx, M.Access.Ref->indices().back()),
          BuiltinId::Idx, Ctx.intLit(0));
      Expr *TidxPart = Tidx();
      if (G.Mult != 1)
        TidxPart = Ctx.mul(TidxPart, Ctx.intLit(G.Mult));
      Expr *Repl = Ctx.add(TidxPart,
                           Ctx.addConst(Residual, -AlignedLow));
      replaceExprPtr(K.body(), M.Access.Ref,
                     Ctx.arrayRef(SH, {Repl}, Type::floatTy()));
      ++R.ConvertedLoads;
    }
    R.Stagings.push_back(SI);
    R.Changed = true;
  }

  (void)Diags;
  return R;
}

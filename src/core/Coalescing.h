//===-- core/Coalescing.h - Memory-coalescing checker -----------*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the checking rules of Section 3.2: for every global access,
/// the addresses of the 16 threads of a half warp are examined (the base
/// address must be segment-aligned and the offsets must be exactly words
/// 0..15); loop indices are checked for their first 16 iteration values,
/// after which the behaviour repeats.
///
/// The affine address model makes the enumeration analytic, and the
/// checker is property-tested against brute-force enumeration.
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_CORE_COALESCING_H
#define GPUC_CORE_COALESCING_H

#include "core/Accesses.h"

namespace gpuc {

/// Why an access fails to coalesce — used to pick a conversion pattern in
/// Section 3.3 and for diagnostics.
enum class CoalesceFailure {
  None,          ///< coalesced
  Unresolved,    ///< paper's "unresolved index": skipped entirely
  ZeroStride,    ///< all 16 threads read the same address (e.g. a[idy][i])
  BadStride,     ///< tidx stride != element size (e.g. a[2*idx])
  HighDimThread, ///< tidx appears in a non-contiguous dimension (a[idx][i])
  Misaligned     ///< right stride but base not segment-aligned (b[idx+i])
};

/// Verdict for one access.
struct CoalesceInfo {
  bool Coalesced = false;
  CoalesceFailure Failure = CoalesceFailure::None;
  /// Byte stride between consecutive threads of a half warp.
  long long ThreadStrideBytes = 0;
};

/// Checks one collected access under \p K's current launch configuration.
CoalesceInfo checkCoalescing(const AccessInfo &A, const KernelFunction &K);

/// Human-readable failure name.
const char *coalesceFailureName(CoalesceFailure F);

} // namespace gpuc

#endif // GPUC_CORE_COALESCING_H

//===-- core/AmdVectorize.cpp - Aggressive AMD vectorization --------------===//

#include "core/AmdVectorize.h"

#include "ast/Walk.h"
#include "ast/Affine.h"

using namespace gpuc;

namespace {

/// Straight-line, lanewise-safe expression: array loads, literals and
/// elementwise arithmetic only.
bool lanewiseExpr(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::FloatLit:
  case ExprKind::IntLit:
    return true;
  case ExprKind::ArrayRef:
    return true; // index checked separately
  case ExprKind::Binary: {
    const auto *B = cast<Binary>(E);
    switch (B->op()) {
    case BinOp::Add:
    case BinOp::Sub:
    case BinOp::Mul:
    case BinOp::Div:
      return lanewiseExpr(B->lhs()) && lanewiseExpr(B->rhs());
    default:
      return false;
    }
  }
  case ExprKind::Unary:
    return cast<Unary>(E)->op() == UnOp::Neg &&
           lanewiseExpr(cast<Unary>(E)->sub());
  default:
    return false;
  }
}

/// Recomputes expression types bottom-up after access widening.
Type retype(Expr *E) {
  switch (E->kind()) {
  case ExprKind::Binary: {
    auto *B = cast<Binary>(E);
    Type L = retype(B->lhs());
    Type R = retype(B->rhs());
    if (L.isFloatVector())
      B->setType(L);
    else if (R.isFloatVector())
      B->setType(R);
    return B->type();
  }
  case ExprKind::Unary: {
    auto *U = cast<Unary>(E);
    U->setType(retype(U->sub()));
    return U->type();
  }
  default:
    return E->type();
  }
}

} // namespace

bool gpuc::canAmdVectorize(const KernelFunction &K) {
  if (K.workDomainY() != 1)
    return false;
  bool Ok = true;
  // Body: only assignments whose LHS is a 1-D store and whose RHS is
  // lanewise; no loops, branches or locals.
  for (const Stmt *S : K.body()->body()) {
    const auto *A = dyn_cast<AssignStmt>(S);
    if (!A || A->op() != AssignOp::Assign || !isa<ArrayRef>(A->lhs()) ||
        !lanewiseExpr(A->rhs())) {
      Ok = false;
      break;
    }
  }
  if (!Ok)
    return false;
  // Every access: 1-D float array indexed exactly by idx.
  forEachExpr(const_cast<CompoundStmt *>(K.body()), [&](Expr *E) {
    auto *Ref = dyn_cast<ArrayRef>(E);
    if (!Ref)
      return;
    const ParamDecl *P = K.findParam(Ref->base());
    if (!P || !P->ElemTy.isFloat() || P->Dims.size() != 1 ||
        Ref->vecWidth() != 1) {
      Ok = false;
      return;
    }
    AffineExpr A;
    if (!buildAffine(Ref->index(0), K, A) || !(A.CTidx == 1 && A.Const == 0 &&
                                               A.CTidy == 0 && A.CBidy == 0 &&
                                               !A.hasLoopTerms()))
      Ok = false;
  });
  return Ok;
}

bool gpuc::amdVectorize(KernelFunction &K, ASTContext &Ctx, int Width) {
  assert((Width == 2 || Width == 4) && "float2 or float4 only");
  if (!canAmdVectorize(K) || K.workDomainX() % Width != 0)
    return false;
  (void)Ctx;
  Type VecTy = Width == 2 ? Type::float2Ty() : Type::float4Ty();
  forEachExpr(K.body(), [&](Expr *E) {
    auto *Ref = dyn_cast<ArrayRef>(E);
    if (!Ref)
      return;
    Ref->setVecWidth(Width);
    Ref->setType(VecTy);
  });
  for (Stmt *S : K.body()->body())
    if (auto *A = dyn_cast<AssignStmt>(S))
      retype(A->rhs());

  K.setWorkDomain(K.workDomainX() / Width, K.workDomainY());
  LaunchConfig &L = K.launch();
  L.BlockDimX = static_cast<int>(
      std::min<long long>(L.BlockDimX, K.workDomainX()));
  L.GridDimX = (K.workDomainX() + L.BlockDimX - 1) / L.BlockDimX;
  return true;
}

//===-- core/PartitionCamp.cpp - Partition-camping elimination ------------===//

#include "core/PartitionCamp.h"

#include "core/AffineLayout.h"

using namespace gpuc;

// The legacy Section 3.7 pass is now a delegator over the affine layout
// family (core/AffineLayout): the diagonal block reordering and the
// Figure 9b address-offset rotation are two enumerated points of that
// family, applied here with the legacy heuristic (2-D square grid ->
// diagonal, 1-D grid -> rotation) instead of a model-driven search.
PartitionCampResult
gpuc::eliminatePartitionCamping(KernelFunction &K, ASTContext &Ctx,
                                const DeviceSpec &Device) {
  CampingAnalysis CA = analyzeCamping(K, Device);
  LayoutPoint P = LayoutPoint::identityPoint();
  if (CA.Detected) {
    if (K.launch().GridDimY > 1) {
      // Diagonal reordering needs a square-ish grid so the remap is a
      // bijection; otherwise the camping is reported but left in place.
      if (K.launch().GridDimX == K.launch().GridDimY)
        P = LayoutPoint::makeRemap(LayoutPoint::Kind::Diagonal,
                                   BlockRemap::diagonal());
    } else {
      P = LayoutPoint::offsetRotation();
    }
  }
  return applyLayout(K, Ctx, Device, P);
}

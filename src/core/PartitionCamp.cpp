//===-- core/PartitionCamp.cpp - Partition-camping elimination ------------===//

#include "core/PartitionCamp.h"

#include "ast/Clone.h"
#include "ast/Walk.h"
#include "core/Accesses.h"

#include <numeric>
#include <set>

using namespace gpuc;

PartitionCampResult
gpuc::eliminatePartitionCamping(KernelFunction &K, ASTContext &Ctx,
                                const DeviceSpec &Device) {
  PartitionCampResult R;
  const long long Window =
      static_cast<long long>(Device.PartitionBytes) * Device.NumPartitions;

  std::vector<AccessInfo> Accesses = collectGlobalAccesses(K);
  struct CampingAccess {
    AccessInfo Access;
    std::string LoopName; // reduction loop usable for offset rotation
    long long RowElems = 0;
  };
  std::vector<CampingAccess> Camping;

  for (const AccessInfo &A : Accesses) {
    if (!A.Resolved)
      continue;
    long long Stride = A.Addr.CBidx;
    // Accesses not involving bidx hit the same partition only at
    // different times (the paper's bidy argument); skip them.
    if (Stride == 0)
      continue;
    // The paper's rule flags strides that are multiples of
    // (partition width * number of partitions): all neighboring blocks
    // land in ONE partition. We generalize to partial camping: when the
    // per-block partition step shares a factor with the partition count,
    // the blocks cover only a strict subset of the partitions (e.g. a
    // 16 KB stride on 6 partitions steps 4 positions and reaches only
    // 3 of 6).
    if (Stride % Device.PartitionBytes != 0)
      continue; // blocks start mid-partition: coverage is full
    long long Step = (Stride / Device.PartitionBytes) % Device.NumPartitions;
    long long G = std::gcd(Step, static_cast<long long>(Device.NumPartitions));
    bool Camped = Stride % Window == 0 || G > 1;
    if (!Camped)
      continue;
    R.Detected = true;
    ++R.CampingAccesses;
    CampingAccess CA;
    CA.Access = A;
    // Offset rotation requires a full-row sweep by some loop iterator in
    // the contiguous dimension.
    const AffineExpr &Last = A.DimAffine.back();
    for (const auto &[Name, Coeff] : Last.LoopCoeffs) {
      if (Coeff != 1)
        continue;
      const LoopInfo *L = A.loopNamed(Name);
      if (!L || !L->Resolved || L->Init != 0)
        continue;
      long long RowElems = A.Param->Dims.back();
      if (L->Bound == RowElems) {
        CA.LoopName = Name;
        CA.RowElems = RowElems;
        break;
      }
    }
    Camping.push_back(std::move(CA));
  }

  if (!R.Detected)
    return R;

  if (K.launch().GridDimY > 1) {
    // 2-D grid: diagonal block reordering (newbidy = bidx,
    // newbidx = (bidx+bidy) % gridDim.x); requires a square-ish grid so
    // the remap is a bijection.
    if (K.launch().GridDimX == K.launch().GridDimY) {
      K.launch().DiagonalRemap = true;
      R.AppliedDiagonal = true;
    }
    return R;
  }

  // 1-D grid: rotate the reduction index by (partition width * bidx) so
  // neighboring blocks start in different partitions (Figure 9b). Legal
  // because the loop is a full-row reduction sweep: every element is still
  // touched exactly once, in a rotated order. The rotation must be applied
  // to EVERY access driven by the rotated loop — staging pairs (a-tile and
  // b-vector in mv) must stay aligned — so if any such access cannot be
  // rotated safely, the whole rewrite is abandoned.
  const long long OffsetElems = Device.PartitionBytes / 4;
  std::set<std::string> RotateLoops;
  for (const CampingAccess &CA : Camping)
    if (!CA.LoopName.empty())
      RotateLoops.insert(CA.LoopName);
  if (RotateLoops.empty())
    return R;

  struct Rotation {
    ArrayRef *Ref;
    std::string LoopName;
    long long RowElems;
  };
  std::vector<Rotation> Rotations;
  for (const AccessInfo &A : Accesses) {
    if (!A.Resolved)
      continue;
    const AffineExpr &Last = A.DimAffine.back();
    std::string Used;
    for (const std::string &LN : RotateLoops)
      if (Last.loopCoeff(LN) != 0)
        Used = LN;
    if (Used.empty())
      continue;
    const LoopInfo *L = A.loopNamed(Used);
    long long RowElems = A.Param->Dims.back();
    if (Last.loopCoeff(Used) != 1 || !L || !L->Resolved || L->Init != 0 ||
        L->Bound != RowElems || RowElems % 16 != 0)
      return R; // unsafe to rotate consistently: keep the camping
    Rotations.push_back({A.Ref, Used, RowElems});
  }
  for (const Rotation &Rot : Rotations) {
    unsigned LastDim = Rot.Ref->numIndices() - 1;
    Expr *Rotated =
        rewriteExpr(Rot.Ref->index(LastDim), [&](Expr *E) -> Expr * {
          auto *V = dyn_cast<VarRef>(E);
          if (!V || V->name() != Rot.LoopName)
            return nullptr;
          // i -> (i + PW*bidx) % RowElems
          Expr *Shift = Ctx.mul(Ctx.intLit(OffsetElems),
                                Ctx.builtin(BuiltinId::Bidx));
          return Ctx.rem(
              Ctx.add(Ctx.varRef(Rot.LoopName, Type::intTy()), Shift),
              Ctx.intLit(Rot.RowElems));
        });
    Rot.Ref->setIndex(LastDim, Rotated);
    R.AppliedOffset = true;
  }
  return R;
}

//===-- core/AmdVectorize.h - Aggressive AMD vectorization ------*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 3.1's AMD rule: on ATI/AMD parts the bandwidth gap between
/// float and float4 is large (71 vs 101 GB/s on the HD 5870), so beyond
/// the strict complex-pair rule the compiler "also groups data accesses
/// from neighboring threads along the X direction into float2/float4
/// data types". Each thread then processes Width consecutive elements
/// through one vector access and the work domain shrinks accordingly.
///
/// Applied to streaming kernels: every global access must be a
/// one-dimensional float array indexed exactly by idx, and the kernel
/// body must be straight-line vectorizable arithmetic.
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_CORE_AMDVECTORIZE_H
#define GPUC_CORE_AMDVECTORIZE_H

#include "ast/Kernel.h"

namespace gpuc {

/// \returns true if \p K fits the neighbor-grouping pattern.
bool canAmdVectorize(const KernelFunction &K);

/// Rewrites \p K so each thread handles \p Width (2 or 4) consecutive
/// elements through floatN accesses; shrinks the work domain and launch.
/// \returns false (kernel untouched) when the pattern does not fit.
bool amdVectorize(KernelFunction &K, ASTContext &Ctx, int Width);

} // namespace gpuc

#endif // GPUC_CORE_AMDVECTORIZE_H

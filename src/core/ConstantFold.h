//===-- core/ConstantFold.h - Expression simplification ---------*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algebraic cleanup of transformed kernels. The staging and merge passes
/// compose indices mechanically, leaving shapes like `(i + 0)`,
/// `((2*0) + 1)` or `(idy*1)`; folding them keeps the emitted CUDA
/// readable — the paper's "understandability of the optimized code" is a
/// headline claim (Section 1), so this is a first-class pass, not
/// cosmetics.
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_CORE_CONSTANTFOLD_H
#define GPUC_CORE_CONSTANTFOLD_H

#include "ast/Kernel.h"

namespace gpuc {

/// Folds one expression tree bottom-up. \returns the new root (may be the
/// original node). Rules: integer constant arithmetic, +0 / -0 / *1 / *0
/// identities, and re-association of nested constant additions
/// ((e + c1) + c2 -> e + (c1+c2)).
Expr *foldExpr(ASTContext &Ctx, Expr *E);

/// Applies foldExpr to every expression of \p K's body.
/// \returns number of nodes simplified.
int foldKernel(KernelFunction &K, ASTContext &Ctx);

} // namespace gpuc

#endif // GPUC_CORE_CONSTANTFOLD_H

//===-- fuzz/Oracle.h - Differential translation validation -----*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translation validation by execution: the naive kernel and every variant
/// the design-space search produces run in the simulator on identical
/// randomized inputs, and the outputs are compared element-wise — exact
/// for kernels that only move data, ULP-bounded where the transforms may
/// reassociate float arithmetic. A mismatch, crash, race or diagnostic
/// regression is attributed to the first pipeline stage whose intermediate
/// kernel (snapshotted through core/Compiler's StageHook) diverges from
/// the naive reference.
///
/// The Inject hook exists for the oracle's own test coverage: a test
/// installs a stage hook that deliberately corrupts the kernel after a
/// named stage, and the attribution must blame exactly that stage.
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_FUZZ_ORACLE_H
#define GPUC_FUZZ_ORACLE_H

#include "core/Compiler.h"

#include <string>
#include <vector>

namespace gpuc {

struct OracleOptions {
  /// Base pipeline configuration. Hook must be empty — the oracle owns
  /// the hook slot (use Inject for fault injection); Jobs is forced to 1
  /// (the fuzzer parallelizes across seeds, not inside a case).
  CompileOptions Compile;
  /// Seed for the randomized input buffers.
  unsigned InputSeed = 0x9e3779b9u;
  /// Tolerances for kernels containing float arithmetic (either bound
  /// passing accepts the element). Data-movement-only kernels must match
  /// bit-exactly.
  int UlpTol = 256;
  double RelTol = 1e-4;
  /// Race-check every optimized variant with the dynamic sanitizer.
  bool CheckRaces = true;
  /// Differential static-vs-dynamic soundness check (gpuc-fuzz
  /// --check-static): classify the naive kernel with the
  /// abstract-interpretation engine (analysis/Dataflow.h) before running
  /// it. A kernel proven clean (every access and barrier Proven, race
  /// detector clean) must never fail the dynamic sanitizer, and a kernel
  /// with a proven out-of-bounds access must always fault dynamically.
  /// Either direction broken is a Kind::StaticUnsound failure — a bug in
  /// the analysis engine, not in the kernel under test.
  bool CheckStatic = false;
  /// Differential check of the two interpreter engines: run the naive
  /// kernel with both the vector and the scalar backend and demand
  /// bit-identical buffers and a record-identical race log. Any
  /// divergence is a Kind::InterpDivergence failure — a bug in one of the
  /// engines, not in the kernel under test.
  bool CheckInterp = true;
  /// Test-only fault injection, run inside the pipeline's stage hook
  /// before the oracle snapshots the kernel.
  StageHook Inject;
};

/// One equivalence violation found by the oracle.
struct OracleFailure {
  enum class Kind {
    CompileError,
    RunError,
    Mismatch,
    Race,
    StaticUnsound,
    InterpDivergence,
  };
  Kind FailKind = Kind::Mismatch;
  /// Variant identity ("naive" for reference-side failures).
  std::string Variant;
  int BlockN = 1, ThreadM = 1;
  /// First pipeline stage whose snapshot diverges from the reference
  /// ("unattributed" when re-compilation did not reproduce the failure).
  std::string Stage;
  /// Mismatch payload: output array, element count, first bad element.
  std::string Array;
  long long MismatchCount = 0;
  long long FirstBadIndex = -1;
  float Want = 0, Got = 0;
  /// Diagnostics / race description.
  std::string Detail;
};

struct OracleResult {
  bool Passed = true;
  /// Variants executed and compared (naive excluded).
  int VariantsChecked = 0;
  /// True when no transform changed float evaluation order eligibility —
  /// i.e. the kernel was classified data-movement-only and compared
  /// bit-exactly.
  bool ExactCompare = false;
  std::vector<OracleFailure> Failures;
  /// Winning variant's merge factors (diagnostics for shape coverage).
  int BestBlockN = 1, BestThreadM = 1;
};

/// Fills every array parameter of \p K with seed-deterministic values in
/// [-0.5, 0.5) (same generator gpucc --validate uses).
void fillFuzzInputs(const KernelFunction &K, BufferSet &Buffers,
                    unsigned Seed);

/// \returns true when \p K performs float arithmetic whose order a
/// transform may legally change (anything beyond moving values around).
bool kernelHasFloatArith(const KernelFunction &K);

/// Units-in-last-place distance between two floats (INT_MAX-clamped;
/// NaN/NaN and inf/inf of equal sign count as 0).
long long ulpDistance(float A, float B);

/// Runs the full differential check of \p Naive under \p Opt. \p M is the
/// module owning \p Naive (variant kernels are built in it / in
/// search-owned modules, as in a normal compilation).
OracleResult runOracle(Module &M, const KernelFunction &Naive,
                       const OracleOptions &Opt);

/// Layout-differential analogue of runOracle (gpuc-fuzz --layout): the
/// affine layout family (core/AffineLayout) is exercised against the
/// naive semantics in two tiers. First, every pure block-id remap that is
/// legal on the naive kernel's own grid is installed directly on a clone
/// of the naive kernel and must reproduce its outputs bit-for-bit
/// regardless of float arithmetic — a bijective relabeling of blocks may
/// not change a single bit. Second, the full family (FullFamily
/// enumeration, not just camping-gated points) is compiled through the
/// whole pipeline at unit merge factors and each variant must match naive
/// under the usual comparator (exact for data movement, ULP where
/// transforms may reassociate floats). Every checked kernel is also
/// cross-checked scalar-vs-vector. Failures carry Stage =
/// "layout:<name>".
OracleResult runLayoutOracle(Module &M, const KernelFunction &Naive,
                             const OracleOptions &Opt);

/// Pipeline analogue of fillFuzzInputs: fills every array parameter of
/// every stage, in pipeline order, skipping names an earlier stage
/// already allocated (so a consumer sees the same bytes its producer's
/// buffer was seeded with before being overwritten).
void fillPipelineFuzzInputs(const std::vector<const KernelFunction *> &Stages,
                            BufferSet &Buffers, unsigned Seed);

/// Runs the fusion-differential check of a multi-kernel pipeline: the
/// unfused naive chain (sim/Simulator runPipelineFunctional) is the
/// reference; the fused naive kernel (when legality admits one) must
/// match it bit-exactly on the final stage's outputs, every compiled
/// fused variant and the chained per-stage winners must match within the
/// float tolerance, and both interpreter engines must agree on the
/// chain. \p Stages must be the parsed pipeline in order (>= 2 kernels,
/// owned by \p M).
OracleResult
runPipelineOracle(Module &M,
                  const std::vector<const KernelFunction *> &Stages,
                  const OracleOptions &Opt);

} // namespace gpuc

#endif // GPUC_FUZZ_ORACLE_H

//===-- fuzz/KernelGen.h - Grammar-directed kernel generation ---*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random well-typed naive kernels in the supported dialect for
/// differential fuzzing of the optimization pipeline. Generation is
/// grammar-directed: a seed picks one of the paper-shaped templates (1-D
/// and 2-D maps, strided/stencil accesses, matrix-product and
/// matrix-vector accumulation loops, float2-eligible interleaved pairs,
/// __globalSync reductions) and then randomizes sizes, strides, operators
/// and expression trees within it. Every generated access is in bounds by
/// construction (array dimensions are derived from the maximal index the
/// chosen pattern can produce), and every work domain is a multiple of 16
/// so the whole pipeline (half-warp retiling, merges, prefetch) applies.
///
/// Determinism contract: the same seed produces a byte-identical kernel
/// on every run and platform. Only std::mt19937 raw draws are used (the
/// standard fixes that engine's sequence; std::uniform_int_distribution
/// is implementation-defined and is avoided here).
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_FUZZ_KERNELGEN_H
#define GPUC_FUZZ_KERNELGEN_H

#include <cstdint>
#include <random>
#include <string>

namespace gpuc {

/// One generated naive kernel, in source form (the canonical exchange
/// format: the fuzzer re-parses it, so every case exercises the parser
/// round trip and every repro is a self-contained .cu file).
struct GeneratedKernel {
  /// Naive-dialect source (parser/Parser.h accepts it).
  std::string Source;
  /// Template the seed selected ("map1d", "stencil1d", "map2d", "mmlike",
  /// "mvlike", "interleave", "reduction").
  std::string Shape;
  /// Alpha-invariant structural hash (ast/Hash.h) of the built kernel;
  /// the fuzzer dedupes structurally identical cases on it.
  uint64_t StructureHash = 0;
};

/// One generated multi-kernel pipeline in source form: the
/// `#pragma gpuc pipeline(...)` clause plus every stage, as
/// Parser::parseProgram accepts it. Used by the fusion-differential
/// fuzzing mode (gpuc-fuzz --pipeline).
struct GeneratedPipeline {
  /// Naive-dialect multi-kernel source (ast/Printer printNaiveProgram).
  std::string Source;
  /// Chain template the seed selected ("chain1d", "chain2d", "mv_chain",
  /// "stencil_chain", "loop_consumer").
  std::string Shape;
  int NumKernels = 0;
  /// Fold of the stages' structural hashes, for structural dedupe.
  uint64_t StructureHash = 0;
  /// Whether the template is fusable by construction. loop_consumer is
  /// the deliberate illegal shape: its consumer indexes the intermediate
  /// with a loop variable, so the legality analysis must reject it and
  /// the search must fall back to the unfused chain.
  bool ExpectFusable = true;
};

/// Deterministic kernel generator; one instance per seed.
class KernelGen {
public:
  explicit KernelGen(unsigned Seed) : Seed(Seed), Rng(Seed) {}

  /// Builds the kernel for this seed. Stable: repeated calls return the
  /// same kernel, and two KernelGen instances with equal seeds agree.
  GeneratedKernel generate();

  /// Builds the 2-3 kernel producer/consumer pipeline for this seed,
  /// under the same determinism contract as generate(). The two entry
  /// points draw from independently restarted engines, so a seed's
  /// kernel and its pipeline are each individually stable.
  GeneratedPipeline generatePipeline();

private:
  unsigned Seed;
  std::mt19937 Rng;
};

} // namespace gpuc

#endif // GPUC_FUZZ_KERNELGEN_H

//===-- fuzz/Fuzzer.cpp - Differential fuzzing driver ---------------------===//

#include "fuzz/Fuzzer.h"

#include "exec/ThreadPool.h"
#include "fuzz/KernelGen.h"
#include "parser/Parser.h"
#include "support/StringUtils.h"

#include <filesystem>
#include <fstream>
#include <mutex>
#include <ostream>
#include <set>

using namespace gpuc;

const char *gpuc::failureKindName(OracleFailure::Kind K) {
  switch (K) {
  case OracleFailure::Kind::CompileError:
    return "compile-error";
  case OracleFailure::Kind::RunError:
    return "run-error";
  case OracleFailure::Kind::Mismatch:
    return "mismatch";
  case OracleFailure::Kind::Race:
    return "race";
  case OracleFailure::Kind::StaticUnsound:
    return "static-unsound";
  case OracleFailure::Kind::InterpDivergence:
    return "interp-divergence";
  }
  return "?";
}

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += strFormat("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

} // namespace

std::string gpuc::failureRecordJson(const FuzzCase &C) {
  const OracleFailure &F = C.Failure;
  std::string S = "{\n";
  S += strFormat("  \"seed\": %u,\n", C.Seed);
  S += strFormat("  \"shape\": \"%s\",\n", jsonEscape(C.Shape).c_str());
  S += strFormat("  \"kind\": \"%s\",\n", failureKindName(F.FailKind));
  S += strFormat("  \"variant\": \"%s\",\n", jsonEscape(F.Variant).c_str());
  S += strFormat("  \"block_n\": %d,\n  \"thread_m\": %d,\n", F.BlockN,
                 F.ThreadM);
  S += strFormat("  \"stage\": \"%s\",\n", jsonEscape(F.Stage).c_str());
  if (F.FailKind == OracleFailure::Kind::Mismatch) {
    S += strFormat("  \"array\": \"%s\",\n", jsonEscape(F.Array).c_str());
    S += strFormat("  \"mismatches\": %lld,\n", F.MismatchCount);
    S += strFormat("  \"first_bad_index\": %lld,\n", F.FirstBadIndex);
    S += strFormat("  \"want\": %.9g,\n  \"got\": %.9g,\n",
                   static_cast<double>(F.Want), static_cast<double>(F.Got));
  }
  S += strFormat("  \"detail\": \"%s\",\n", jsonEscape(F.Detail).c_str());
  S += strFormat("  \"variants_checked\": %d,\n", C.VariantsChecked);
  S += strFormat("  \"reduced_lines\": %d,\n", countCodeLines(C.Reduced));
  S += strFormat("  \"reduce_attempts\": %d,\n  \"reduce_accepted\": %d,\n"
                 "  \"reduce_rounds\": %d,\n",
                 C.Reduce.Attempts, C.Reduce.Accepted, C.Reduce.Rounds);
  S += strFormat("  \"source\": \"%s\",\n", jsonEscape(C.Source).c_str());
  S += strFormat("  \"reduced\": \"%s\"\n", jsonEscape(C.Reduced).c_str());
  S += "}\n";
  return S;
}

bool gpuc::checkKernelSource(const std::string &Source,
                             const OracleOptions &Opt, OracleResult &Result,
                             std::string &ParseErrors) {
  Module M;
  DiagnosticsEngine Diags;
  Parser P(Source, Diags);
  KernelFunction *K = P.parseKernel(M);
  if (!K || Diags.hasErrors()) {
    ParseErrors = Diags.str();
    return false;
  }
  Result = runOracle(M, *K, Opt);
  return true;
}

bool gpuc::checkLayoutSource(const std::string &Source,
                             const OracleOptions &Opt, OracleResult &Result,
                             std::string &ParseErrors) {
  Module M;
  DiagnosticsEngine Diags;
  Parser P(Source, Diags);
  KernelFunction *K = P.parseKernel(M);
  if (!K || Diags.hasErrors()) {
    ParseErrors = Diags.str();
    return false;
  }
  Result = runLayoutOracle(M, *K, Opt);
  return true;
}

bool gpuc::checkPipelineSource(const std::string &Source,
                               const OracleOptions &Opt, OracleResult &Result,
                               std::string &ParseErrors) {
  Module M;
  DiagnosticsEngine Diags;
  Parser P(Source, Diags);
  std::vector<KernelFunction *> Stages = P.parseProgram(M);
  if (Stages.size() < 2 || Diags.hasErrors()) {
    ParseErrors = Diags.str();
    if (Stages.size() < 2 && ParseErrors.empty())
      ParseErrors = "expected a multi-kernel pipeline\n";
    return false;
  }
  std::vector<const KernelFunction *> CStages(Stages.begin(), Stages.end());
  Result = runPipelineOracle(M, CStages, Opt);
  return true;
}

namespace {

/// Minimizes a failing case under a predicate pinned to the original
/// failure signature (kind + blamed stage), so the reducer cannot wander
/// onto an unrelated bug while shrinking.
std::string reduceCase(const FuzzCase &C, const OracleOptions &Opt,
                       bool Layout, ReduceStats &Stats) {
  OracleFailure::Kind Kind = C.Failure.FailKind;
  std::string Stage = C.Failure.Stage;
  FailurePredicate Pinned = [&](const std::string &Cand) {
    OracleResult R;
    std::string Errs;
    bool Parsed = Layout ? checkLayoutSource(Cand, Opt, R, Errs)
                         : checkKernelSource(Cand, Opt, R, Errs);
    if (!Parsed)
      return false;
    for (const OracleFailure &F : R.Failures)
      if (F.FailKind == Kind && F.Stage == Stage)
        return true;
    return false;
  };
  return reduceKernelSource(C.Source, Pinned, &Stats);
}

void writeArtifacts(const std::string &OutDir, const FuzzCase &C) {
  std::error_code EC;
  std::filesystem::create_directories(OutDir, EC);
  std::string Base = OutDir + "/seed" + std::to_string(C.Seed);
  std::ofstream(Base + ".cu") << (C.Reduced.empty() ? C.Source : C.Reduced);
  std::ofstream(Base + ".json") << failureRecordJson(C);
}

} // namespace

FuzzSummary gpuc::runFuzz(const FuzzOptions &Opt, std::ostream *Progress) {
  FuzzSummary Sum;
  size_t N = Opt.NumSeeds;
  std::vector<FuzzCase> Cases(N);

  // Structural-dedupe set, shared across lanes. A seed that hashes to an
  // already-seen kernel skips the (expensive) oracle; first writer wins,
  // which is deterministic enough for counting (the set of unique hashes
  // is schedule-independent even if which seed "owns" one is not).
  std::set<uint64_t> Seen;
  std::mutex Mu;

  ThreadPool Pool(Opt.Jobs <= 0 ? 0 : static_cast<unsigned>(Opt.Jobs));
  Pool.parallelFor(N, [&](size_t I) {
    FuzzCase &C = Cases[I];
    C.Seed = Opt.FirstSeed + static_cast<unsigned>(I);

    KernelGen Gen(C.Seed);
    std::string Source;
    uint64_t StructureHash;
    if (Opt.Pipeline) {
      GeneratedPipeline GP = Gen.generatePipeline();
      C.Shape = GP.Shape;
      Source = std::move(GP.Source);
      StructureHash = GP.StructureHash;
    } else {
      GeneratedKernel GK = Gen.generate();
      C.Shape = GK.Shape;
      Source = std::move(GK.Source);
      StructureHash = GK.StructureHash;
    }
    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (!Seen.insert(StructureHash).second) {
        C.St = FuzzCase::Status::Duplicate;
        return;
      }
    }

    // Per-case oracle config: remix the input seed so different kernels
    // see different data, deterministically in the case seed.
    OracleOptions OO = Opt.Oracle;
    OO.InputSeed = Opt.Oracle.InputSeed ^ (C.Seed * 2654435761u + 1u);

    // The generator emits printed source; parsing it back is itself the
    // Printer->Parser round-trip check (printNaiveProgram->parseProgram
    // for pipelines).
    OracleResult R;
    std::string ParseErrs;
    bool Parsed = Opt.Pipeline ? checkPipelineSource(Source, OO, R, ParseErrs)
                  : Opt.Layout ? checkLayoutSource(Source, OO, R, ParseErrs)
                               : checkKernelSource(Source, OO, R, ParseErrs);
    if (!Parsed) {
      C.St = FuzzCase::Status::Failed;
      C.Source = Source;
      C.Failure.FailKind = OracleFailure::Kind::CompileError;
      C.Failure.Variant = "parse";
      C.Failure.Stage = "input";
      C.Failure.Detail = "generated source failed to re-parse:\n" + ParseErrs;
      C.Reduced = Source;
      return;
    }
    C.VariantsChecked = R.VariantsChecked;
    if (R.Passed) {
      C.St = FuzzCase::Status::Passed;
      if (Progress) {
        std::lock_guard<std::mutex> Lock(Mu);
        *Progress << strFormat("seed %u: ok (%s, %d variants)\n", C.Seed,
                               C.Shape.c_str(), R.VariantsChecked);
      }
      return;
    }

    C.St = FuzzCase::Status::Failed;
    C.Source = Source;
    C.Failure = R.Failures.front();
    // The reducer's mutations are single-kernel; pipeline repros are
    // already small (2-3 short stages) and ship unminimized.
    C.Reduced = Opt.ReduceFailures && !Opt.Pipeline
                    ? reduceCase(C, OO, Opt.Layout, C.Reduce)
                    : C.Source;
    if (!Opt.OutDir.empty())
      writeArtifacts(Opt.OutDir, C);
    if (Progress) {
      std::lock_guard<std::mutex> Lock(Mu);
      *Progress << strFormat("seed %u: FAIL %s at stage '%s' (%s)\n", C.Seed,
                             failureKindName(C.Failure.FailKind),
                             C.Failure.Stage.c_str(), C.Shape.c_str());
    }
  });

  for (FuzzCase &C : Cases) {
    ++Sum.Cases;
    switch (C.St) {
    case FuzzCase::Status::Passed:
      ++Sum.Passed;
      break;
    case FuzzCase::Status::Duplicate:
      ++Sum.Duplicates;
      break;
    case FuzzCase::Status::Failed:
      ++Sum.Failed;
      break;
    }
    if (C.St != FuzzCase::Status::Duplicate)
      ++Sum.ShapeCounts[C.Shape];
    Sum.VariantsChecked += C.VariantsChecked;
    if (C.St == FuzzCase::Status::Failed)
      Sum.Failures.push_back(std::move(C));
  }
  return Sum;
}

//===-- fuzz/Oracle.cpp - Differential translation validation -------------===//

#include "fuzz/Oracle.h"

#include "analysis/Dataflow.h"
#include "analysis/RaceDetector.h"
#include "ast/Clone.h"
#include "ast/Walk.h"
#include "sim/Simulator.h"
#include "support/StringUtils.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <map>

using namespace gpuc;

namespace {

/// The shared LCG fill: one continuing \p State across every buffer, so
/// a fixed allocation order fixes every byte.
void fillParamBuffer(const ParamDecl &P, BufferSet &Buffers,
                     unsigned &State) {
  auto &V = Buffers.alloc(P.Name, static_cast<size_t>(P.elemCount()) *
                                      P.ElemTy.vectorWidth());
  for (float &X : V) {
    State = State * 1664525u + 1013904223u;
    X = static_cast<float>(State >> 20) / 4096.0f - 0.5f;
  }
}

} // namespace

void gpuc::fillFuzzInputs(const KernelFunction &K, BufferSet &Buffers,
                          unsigned Seed) {
  unsigned State = Seed ? Seed : 1u;
  for (const ParamDecl &P : K.params())
    if (P.IsArray)
      fillParamBuffer(P, Buffers, State);
}

void gpuc::fillPipelineFuzzInputs(
    const std::vector<const KernelFunction *> &Stages, BufferSet &Buffers,
    unsigned Seed) {
  unsigned State = Seed ? Seed : 1u;
  for (const KernelFunction *K : Stages)
    for (const ParamDecl &P : K->params())
      if (P.IsArray && !Buffers.has(P.Name))
        fillParamBuffer(P, Buffers, State);
}

bool gpuc::kernelHasFloatArith(const KernelFunction &K) {
  bool Arith = false;
  forEachStmt(K.body(), [&](Stmt *S) {
    if (auto *A = dyn_cast<AssignStmt>(S))
      if (A->op() != AssignOp::Assign)
        Arith = true;
  });
  if (Arith)
    return true;
  forEachExpr(K.body(), [&](Expr *E) {
    if (auto *B = dyn_cast<Binary>(E)) {
      if (B->type().isFloat())
        Arith = true;
    } else if (isa<Call>(E)) {
      Arith = true;
    }
  });
  return Arith;
}

long long gpuc::ulpDistance(float A, float B) {
  if (A == B)
    return 0;
  if (std::isnan(A) || std::isnan(B))
    return std::isnan(A) && std::isnan(B)
               ? 0
               : std::numeric_limits<long long>::max();
  int32_t IA, IB;
  std::memcpy(&IA, &A, sizeof(float));
  std::memcpy(&IB, &B, sizeof(float));
  // Map to a monotonic integer line (sign-magnitude -> offset binary).
  if (IA < 0)
    IA = std::numeric_limits<int32_t>::min() - IA;
  if (IB < 0)
    IB = std::numeric_limits<int32_t>::min() - IB;
  return std::llabs(static_cast<long long>(IA) - static_cast<long long>(IB));
}

namespace {

/// Per-element acceptance for one output array.
struct Comparator {
  bool Exact;
  int UlpTol;
  double RelTol;

  bool accept(float Want, float Got) const {
    if (std::memcmp(&Want, &Got, sizeof(float)) == 0)
      return true;
    if (Exact)
      return false;
    if (ulpDistance(Want, Got) <= UlpTol)
      return true;
    double Denom = std::max(1.0, static_cast<double>(std::fabs(Want)));
    return std::fabs(static_cast<double>(Want) - Got) / Denom <= RelTol;
  }
};

/// Compares every output array of \p K; fills mismatch fields of \p F.
/// \returns true when all elements are accepted.
bool compareOutputs(const KernelFunction &K, const BufferSet &Ref,
                    const BufferSet &Got, const Comparator &Cmp,
                    OracleFailure &F) {
  bool Ok = true;
  for (const ParamDecl &P : K.params()) {
    if (!P.IsArray || !P.IsOutput)
      continue;
    const auto &A = Ref.data(P.Name);
    const auto &B = Got.data(P.Name);
    for (size_t I = 0; I < A.size() && I < B.size(); ++I) {
      if (Cmp.accept(A[I], B[I]))
        continue;
      if (F.MismatchCount == 0) {
        F.Array = P.Name;
        F.FirstBadIndex = static_cast<long long>(I);
        F.Want = A[I];
        F.Got = B[I];
      }
      ++F.MismatchCount;
      Ok = false;
    }
  }
  return Ok;
}

std::string describeRaces(const RaceLog &Races) {
  std::string S;
  for (const RaceRecord &R : Races.Races)
    S += strFormat("%s race on '%s' word %lld (phase %d, block %lld, "
                   "threads %lld/%lld)\n",
                   R.WriteWrite ? "write-write" : "write-read",
                   R.Array.c_str(), R.Word, R.Phase, R.Block, R.T1, R.T2);
  return S;
}

/// Runs \p K functionally against fresh seeded buffers. \returns false on
/// an execution error (message in \p Detail) and surfaces races.
bool runVariant(const Simulator &Sim, const KernelFunction &K,
                unsigned InputSeed, bool CheckRaces, BufferSet &Buffers,
                std::string &Detail, bool &Raced) {
  fillFuzzInputs(K, Buffers, InputSeed);
  DiagnosticsEngine RunDiags;
  RaceLog Races;
  bool Ok = Sim.runFunctional(K, Buffers, RunDiags,
                              CheckRaces ? &Races : nullptr);
  Raced = CheckRaces && !Races.clean();
  if (!Ok)
    Detail = RunDiags.str();
  else if (Raced)
    Detail = describeRaces(Races);
  return Ok;
}

/// Re-compiles one variant with a snapshot hook and blames the first
/// stage whose intermediate kernel diverges from the reference outputs
/// (or fails to run / races, matching the original failure mode).
std::string attributeStage(const KernelFunction &Naive,
                           const OracleOptions &Opt, int BlockN, int ThreadM,
                           const Simulator &Sim, const BufferSet &Ref,
                           const Comparator &Cmp) {
  Module CompileM;
  Module SnapM; // snapshots survive the pipeline mutating the variant
  DiagnosticsEngine Diags;
  GpuCompiler GC(CompileM, Diags);

  std::vector<std::pair<std::string, KernelFunction *>> Snaps;
  CompileOptions O = Opt.Compile;
  O.Hook = [&](const char *Stage, KernelFunction &K, bool Final) {
    if (Opt.Inject)
      Opt.Inject(Stage, K, Final);
    Snaps.emplace_back(Stage, cloneKernel(SnapM, &K, K.name()));
  };
  GC.compileVariant(Naive, O, BlockN, ThreadM);

  for (const auto &[Stage, Snap] : Snaps) {
    BufferSet Buffers;
    std::string Detail;
    bool Raced = false;
    bool Ok = runVariant(Sim, *Snap, Opt.InputSeed, Opt.CheckRaces, Buffers,
                         Detail, Raced);
    OracleFailure Scratch;
    if (!Ok || Raced || !compareOutputs(Naive, Ref, Buffers, Cmp, Scratch))
      return Stage;
  }
  return "unattributed";
}

/// Static classification of one kernel for the --check-static
/// differential. Clean demands Proven verdicts on every access and
/// barrier plus a clean race report; ProvenOOB means some access carries
/// a Violation verdict (must-execute, proven out of bounds), which the
/// dynamic sanitizer is then obligated to observe.
struct StaticClass {
  bool Clean = false;
  bool ProvenOOB = false;
  std::string Desc;
};

bool sameRaceLog(const RaceLog &A, const RaceLog &B) {
  if (A.Phases != B.Phases || A.Races.size() != B.Races.size())
    return false;
  for (size_t I = 0; I < A.Races.size(); ++I) {
    const RaceRecord &X = A.Races[I], &Y = B.Races[I];
    if (X.Array != Y.Array || X.WriteWrite != Y.WriteWrite ||
        X.Phase != Y.Phase || X.Word != Y.Word || X.T1 != Y.T1 ||
        X.T2 != Y.T2 || X.Block != Y.Block)
      return false;
  }
  return true;
}

/// Bit-compares one named buffer between two BufferSets; fills \p Detail
/// and \returns false at the first diverging element.
bool bufferBitEqual(const std::string &Name, const BufferSet &BufS,
                    const BufferSet &BufV, std::string &Detail) {
  const auto &A = BufS.data(Name);
  const auto &B = BufV.data(Name);
  if (A.size() == B.size() &&
      (A.empty() ||
       std::memcmp(A.data(), B.data(), A.size() * sizeof(float)) == 0))
    return true;
  for (size_t I = 0; I < A.size() && I < B.size(); ++I) {
    if (std::memcmp(&A[I], &B[I], sizeof(float)) != 0) {
      Detail = strFormat("buffer '%s' diverges at [%zu]: scalar %.9g, "
                         "vector %.9g",
                         Name.c_str(), I, A[I], B[I]);
      break;
    }
  }
  if (Detail.empty())
    Detail = strFormat("buffer '%s' sizes diverge", Name.c_str());
  return false;
}

/// Runs \p K with both interpreter engines on identical seeded inputs and
/// demands equal outcomes, bit-identical buffers and a record-identical
/// race log. \returns false with \p Detail filled on divergence.
bool crossCheckInterp(const Simulator &Sim, const KernelFunction &K,
                      unsigned InputSeed, std::string &Detail) {
  Simulator Scalar(Sim.device());
  Scalar.setInterpBackend(InterpBackend::Scalar);
  Simulator Vector(Sim.device());
  Vector.setInterpBackend(InterpBackend::Vector);

  BufferSet BufS, BufV;
  fillFuzzInputs(K, BufS, InputSeed);
  fillFuzzInputs(K, BufV, InputSeed);
  DiagnosticsEngine DiagS, DiagV;
  RaceLog RaceS, RaceV;
  bool OkS = Scalar.runFunctional(K, BufS, DiagS, &RaceS);
  bool OkV = Vector.runFunctional(K, BufV, DiagV, &RaceV);
  if (OkS != OkV) {
    Detail = strFormat("engines disagree on outcome: scalar %s, vector %s\n",
                       OkS ? "ok" : "error", OkV ? "ok" : "error") +
             DiagS.str() + DiagV.str();
    return false;
  }
  if (!OkS)
    return true; // both faulted; the result is discarded either way
  for (const ParamDecl &P : K.params()) {
    if (!P.IsArray)
      continue;
    if (!bufferBitEqual(P.Name, BufS, BufV, Detail))
      return false;
  }
  if (!sameRaceLog(RaceS, RaceV)) {
    Detail = "race logs diverge:\nscalar:\n" + describeRaces(RaceS) +
             "vector:\n" + describeRaces(RaceV) +
             strFormat("(%zu vs %zu records, %d vs %d phases)",
                       RaceS.Races.size(), RaceV.Races.size(), RaceS.Phases,
                       RaceV.Phases);
    return false;
  }
  return true;
}

/// Pipeline analogue of crossCheckInterp: both engines run the whole
/// unfused naive chain on identical seeded inputs and must agree on the
/// outcome, every stage buffer bit-for-bit, and the chain-wide race log.
bool crossCheckInterpPipeline(
    const Simulator &Sim, const std::vector<const KernelFunction *> &Stages,
    unsigned InputSeed, std::string &Detail) {
  Simulator Scalar(Sim.device());
  Scalar.setInterpBackend(InterpBackend::Scalar);
  Simulator Vector(Sim.device());
  Vector.setInterpBackend(InterpBackend::Vector);

  BufferSet BufS, BufV;
  fillPipelineFuzzInputs(Stages, BufS, InputSeed);
  fillPipelineFuzzInputs(Stages, BufV, InputSeed);
  DiagnosticsEngine DiagS, DiagV;
  RaceLog RaceS, RaceV;
  bool OkS = Scalar.runPipelineFunctional(Stages, BufS, DiagS, &RaceS);
  bool OkV = Vector.runPipelineFunctional(Stages, BufV, DiagV, &RaceV);
  if (OkS != OkV) {
    Detail = strFormat("engines disagree on chain outcome: scalar %s, "
                       "vector %s\n",
                       OkS ? "ok" : "error", OkV ? "ok" : "error") +
             DiagS.str() + DiagV.str();
    return false;
  }
  if (!OkS)
    return true;
  for (const KernelFunction *K : Stages)
    for (const ParamDecl &P : K->params())
      if (P.IsArray && !bufferBitEqual(P.Name, BufS, BufV, Detail))
        return false;
  if (!sameRaceLog(RaceS, RaceV)) {
    Detail = "chain race logs diverge:\nscalar:\n" + describeRaces(RaceS) +
             "vector:\n" + describeRaces(RaceV);
    return false;
  }
  return true;
}

StaticClass classifyStatic(const KernelFunction &K) {
  StaticClass C;
  DataflowResult DF = runDataflow(K);
  RaceReport RR = detectSharedRaces(K);
  int Proven = 0, Possible = 0, Violations = 0;
  for (const AccessFact &A : DF.Accesses) {
    if (A.Bounds == Verdict::Proven)
      ++Proven;
    else if (A.Bounds == Verdict::Violation)
      ++Violations;
    else
      ++Possible;
  }
  C.ProvenOOB = Violations > 0;
  C.Clean = DF.boundsClean() && DF.barriersClean() && RR.clean();
  C.Desc = strFormat("accesses: %d proven, %d possible, %d violation; "
                     "barriers %s; races %s",
                     Proven, Possible, Violations,
                     DF.barriersClean() ? "proven" : "unproven",
                     RR.clean() ? "clean" : "unproven");
  return C;
}

} // namespace

OracleResult gpuc::runOracle(Module &M, const KernelFunction &Naive,
                             const OracleOptions &Opt) {
  OracleResult Res;
  Simulator Sim(Opt.Compile.Device);
  Sim.setInterpBackend(Opt.Compile.Interp);

  StaticClass SC;
  if (Opt.CheckStatic)
    SC = classifyStatic(Naive);

  if (Opt.CheckInterp) {
    std::string Detail;
    if (!crossCheckInterp(Sim, Naive, Opt.InputSeed, Detail)) {
      OracleFailure F;
      F.FailKind = OracleFailure::Kind::InterpDivergence;
      F.Variant = "naive";
      F.Stage = "interp";
      F.Detail = Detail;
      Res.Failures.push_back(F);
      Res.Passed = false;
      return Res;
    }
  }

  // Reference: the naive kernel's own outputs on the seeded inputs. Under
  // --check-static the naive run is itself race-checked, since the static
  // claim being audited covers race-freedom too.
  BufferSet Ref;
  {
    fillFuzzInputs(Naive, Ref, Opt.InputSeed);
    DiagnosticsEngine RunDiags;
    RaceLog NaiveRaces;
    bool WantRaces = Opt.CheckStatic && Opt.CheckRaces;
    bool Ok = Sim.runFunctional(Naive, Ref, RunDiags,
                                WantRaces ? &NaiveRaces : nullptr);
    bool Raced = WantRaces && !NaiveRaces.clean();
    if (!Ok || Raced) {
      OracleFailure F;
      F.Variant = "naive";
      F.Stage = "input";
      if (Opt.CheckStatic && SC.Clean) {
        // The engine proved this kernel in-bounds, barrier-uniform and
        // race-free; the dynamic sanitizer disagrees. Unsound analysis.
        F.FailKind = OracleFailure::Kind::StaticUnsound;
        F.Stage = "static";
        F.Detail = "statically clean kernel failed the dynamic sanitizer "
                   "(" + SC.Desc + "):\n" +
                   (!Ok ? RunDiags.str() : describeRaces(NaiveRaces));
      } else {
        F.FailKind = !Ok ? OracleFailure::Kind::RunError
                         : OracleFailure::Kind::Race;
        F.Detail = !Ok ? RunDiags.str() : describeRaces(NaiveRaces);
      }
      Res.Failures.push_back(F);
      Res.Passed = false;
      return Res;
    }
    if (Opt.CheckStatic && SC.ProvenOOB) {
      // A Violation verdict asserts some thread must fault; a clean run
      // refutes the proof. Unsound in the other direction.
      OracleFailure F;
      F.FailKind = OracleFailure::Kind::StaticUnsound;
      F.Variant = "naive";
      F.Stage = "static";
      F.Detail = "proven out-of-bounds access did not fault dynamically (" +
                 SC.Desc + ")";
      Res.Failures.push_back(F);
      Res.Passed = false;
      return Res;
    }
  }

  Comparator Cmp{!kernelHasFloatArith(Naive), Opt.UlpTol, Opt.RelTol};
  Res.ExactCompare = Cmp.Exact;

  // Full pipeline + design-space search. The oracle owns the hook slot;
  // the injected fault (if any) rides inside it.
  CompileOptions CO = Opt.Compile;
  CO.Jobs = 1;
  CO.Hook = Opt.Inject;
  DiagnosticsEngine CompDiags;
  GpuCompiler GC(M, CompDiags);
  CompileOutput Out = GC.compile(Naive, CO);
  if (!Out.Best || CompDiags.hasErrors()) {
    OracleFailure F;
    F.FailKind = OracleFailure::Kind::CompileError;
    F.Variant = "compile";
    F.Stage = "final";
    F.Detail = CompDiags.str() + Out.Log;
    Res.Failures.push_back(F);
    Res.Passed = false;
    return Res;
  }
  Res.BestBlockN = Out.BestVariant.BlockMergeN;
  Res.BestThreadM = Out.BestVariant.ThreadMergeM;

  // Execute every variant the search produced (feasible or not — pruned
  // and occupancy-limited kernels still must be semantically correct).
  for (const VariantResult &V : Out.Variants) {
    if (!V.Kernel)
      continue;
    ++Res.VariantsChecked;
    OracleFailure F;
    F.Variant = V.Kernel->name();
    F.BlockN = V.BlockMergeN;
    F.ThreadM = V.ThreadMergeM;

    BufferSet Buffers;
    std::string Detail;
    bool Raced = false;
    bool Ok = runVariant(Sim, *V.Kernel, Opt.InputSeed, Opt.CheckRaces,
                         Buffers, Detail, Raced);
    if (Ok && !Raced && compareOutputs(Naive, Ref, Buffers, Cmp, F))
      continue;

    F.FailKind = !Ok ? OracleFailure::Kind::RunError
                 : Raced ? OracleFailure::Kind::Race
                         : OracleFailure::Kind::Mismatch;
    F.Detail = Detail;
    F.Stage = attributeStage(Naive, Opt, V.BlockMergeN, V.ThreadMergeM, Sim,
                             Ref, Cmp);
    // A sanitizer-level failure (fault or race, not a value mismatch) on
    // a variant the engine proved clean is the same unsoundness the naive
    // check hunts for, surfaced on a transformed kernel.
    if (Opt.CheckStatic && F.FailKind != OracleFailure::Kind::Mismatch) {
      StaticClass VSC = classifyStatic(*V.Kernel);
      if (VSC.Clean) {
        F.FailKind = OracleFailure::Kind::StaticUnsound;
        F.Detail = "statically clean variant failed the dynamic sanitizer "
                   "(" + VSC.Desc + "):\n" + Detail;
      }
    }
    Res.Failures.push_back(F);
    Res.Passed = false;
  }
  return Res;
}

OracleResult gpuc::runLayoutOracle(Module &M, const KernelFunction &Naive,
                                   const OracleOptions &Opt) {
  OracleResult Res;
  Simulator Sim(Opt.Compile.Device);
  Sim.setInterpBackend(Opt.Compile.Interp);

  if (Opt.CheckInterp) {
    std::string Detail;
    if (!crossCheckInterp(Sim, Naive, Opt.InputSeed, Detail)) {
      OracleFailure F;
      F.FailKind = OracleFailure::Kind::InterpDivergence;
      F.Variant = "naive";
      F.Stage = "interp";
      F.Detail = Detail;
      Res.Failures.push_back(F);
      Res.Passed = false;
      return Res;
    }
  }

  // Reference: the naive kernel's own outputs on the seeded inputs.
  BufferSet Ref;
  {
    fillFuzzInputs(Naive, Ref, Opt.InputSeed);
    DiagnosticsEngine RunDiags;
    if (!Sim.runFunctional(Naive, Ref, RunDiags, nullptr)) {
      OracleFailure F;
      F.FailKind = OracleFailure::Kind::RunError;
      F.Variant = "naive";
      F.Stage = "input";
      F.Detail = RunDiags.str();
      Res.Failures.push_back(F);
      Res.Passed = false;
      return Res;
    }
  }

  // Tier one: pure block-id remaps installed directly on the naive
  // kernel. A legal remap is a bijection on block ids — it only relabels
  // which physical block runs which logical tile — so the outputs must be
  // bit-identical to naive even for float-arithmetic kernels. This is the
  // strongest claim of the battery and holds with no tolerance at all.
  {
    const LaunchConfig &L = Naive.launch();
    const std::pair<const char *, BlockRemap> Pure[] = {
        {"shift", {1, 0, 0, 1, 1, 0}},
        {"swap", {0, 1, 1, 0, 0, 0}},
        {"skew-x", {1, 1, 0, 1, 0, 0}},
        {"skew-y", {1, 0, 1, 1, 0, 0}},
        {"diagonal", BlockRemap::diagonal()},
    };
    Comparator Bit{/*Exact=*/true, 0, 0.0};
    for (const auto &[Name, Remap] : Pure) {
      if (!remapLegal(Remap, L.GridDimX, L.GridDimY))
        continue;
      KernelFunction *Clone =
          cloneKernel(M, &Naive, Naive.name() + "_remap_" + Name);
      Clone->launch().Remap = Remap;
      ++Res.VariantsChecked;
      OracleFailure F;
      F.Variant = Clone->name();
      F.Stage = std::string("layout:") + Name;
      if (Opt.CheckInterp) {
        std::string Detail;
        if (!crossCheckInterp(Sim, *Clone, Opt.InputSeed, Detail)) {
          F.FailKind = OracleFailure::Kind::InterpDivergence;
          F.Detail = Detail;
          Res.Failures.push_back(F);
          Res.Passed = false;
          continue;
        }
      }
      BufferSet Buffers;
      std::string Detail;
      bool Raced = false;
      bool Ok = runVariant(Sim, *Clone, Opt.InputSeed, Opt.CheckRaces,
                           Buffers, Detail, Raced);
      if (Ok && !Raced && compareOutputs(Naive, Ref, Buffers, Bit, F))
        continue;
      F.FailKind = !Ok     ? OracleFailure::Kind::RunError
                   : Raced ? OracleFailure::Kind::Race
                           : OracleFailure::Kind::Mismatch;
      F.Detail = Detail;
      Res.Failures.push_back(F);
      Res.Passed = false;
    }
  }

  Comparator Cmp{!kernelHasFloatArith(Naive), Opt.UlpTol, Opt.RelTol};
  Res.ExactCompare = Cmp.Exact;

  CompileOptions CO = Opt.Compile;
  CO.Jobs = 1;
  CO.Hook = Opt.Inject;

  // Identity probe at unit merge factors: yields the post-pipeline launch
  // and the camping scan that seed the family enumeration.
  Module ProbeM;
  DiagnosticsEngine ProbeDiags;
  GpuCompiler ProbeGC(ProbeM, ProbeDiags);
  LayoutPoint Identity = LayoutPoint::identityPoint();
  CampingAnalysis Scan;
  KernelFunction *Probe = ProbeGC.compileVariant(Naive, CO, 1, 1, nullptr,
                                                 nullptr, &Identity, &Scan);
  if (!Probe || ProbeDiags.hasErrors()) {
    OracleFailure F;
    F.FailKind = OracleFailure::Kind::CompileError;
    F.Variant = "compile";
    F.Stage = "layout:identity";
    F.Detail = ProbeDiags.str();
    Res.Failures.push_back(F);
    Res.Passed = false;
    return Res;
  }

  // Tier two: every point of the full family — enumerated
  // unconditionally, not just when camping is detected — compiled through
  // the whole pipeline and compared against naive under the usual
  // comparator. Illegal points degrade to the identity inside applyLayout
  // and still must agree (the degradation itself is under test).
  std::vector<LayoutPoint> Points =
      enumerateLayouts(*Probe, CO.Device, Scan, /*FullFamily=*/true);
  for (const LayoutPoint &P : Points) {
    Module VarM;
    DiagnosticsEngine Diags;
    GpuCompiler GC(VarM, Diags);
    KernelFunction *V = P.identity()
                            ? Probe
                            : GC.compileVariant(Naive, CO, 1, 1, nullptr,
                                                nullptr, &P, nullptr);
    OracleFailure F;
    F.Stage = std::string("layout:") + P.name();
    if (!V || (!P.identity() && Diags.hasErrors())) {
      F.FailKind = OracleFailure::Kind::CompileError;
      F.Variant = "compile";
      F.Detail = Diags.str();
      Res.Failures.push_back(F);
      Res.Passed = false;
      continue;
    }
    ++Res.VariantsChecked;
    F.Variant = V->name();
    if (Opt.CheckInterp) {
      std::string Detail;
      if (!crossCheckInterp(Sim, *V, Opt.InputSeed, Detail)) {
        F.FailKind = OracleFailure::Kind::InterpDivergence;
        F.Detail = Detail;
        Res.Failures.push_back(F);
        Res.Passed = false;
        continue;
      }
    }
    BufferSet Buffers;
    std::string Detail;
    bool Raced = false;
    bool Ok = runVariant(Sim, *V, Opt.InputSeed, Opt.CheckRaces, Buffers,
                         Detail, Raced);
    if (Ok && !Raced && compareOutputs(Naive, Ref, Buffers, Cmp, F))
      continue;
    F.FailKind = !Ok     ? OracleFailure::Kind::RunError
                 : Raced ? OracleFailure::Kind::Race
                         : OracleFailure::Kind::Mismatch;
    F.Detail = Detail;
    Res.Failures.push_back(F);
    Res.Passed = false;
  }
  return Res;
}

OracleResult gpuc::runPipelineOracle(
    Module &M, const std::vector<const KernelFunction *> &Stages,
    const OracleOptions &Opt) {
  OracleResult Res;
  Simulator Sim(Opt.Compile.Device);
  Sim.setInterpBackend(Opt.Compile.Interp);
  const KernelFunction &Final = *Stages.back();

  if (Opt.CheckInterp) {
    std::string Detail;
    if (!crossCheckInterpPipeline(Sim, Stages, Opt.InputSeed, Detail)) {
      OracleFailure F;
      F.FailKind = OracleFailure::Kind::InterpDivergence;
      F.Variant = "chain";
      F.Stage = "interp";
      F.Detail = Detail;
      Res.Failures.push_back(F);
      Res.Passed = false;
      return Res;
    }
  }

  // Reference: the unfused naive chain, stage by stage against one shared
  // buffer set (the simulator is the paper-semantics oracle the fusion
  // transform is tested against).
  BufferSet Ref;
  {
    fillPipelineFuzzInputs(Stages, Ref, Opt.InputSeed);
    DiagnosticsEngine RunDiags;
    RaceLog Races;
    bool Ok = Sim.runPipelineFunctional(Stages, Ref, RunDiags,
                                        Opt.CheckRaces ? &Races : nullptr);
    bool Raced = Opt.CheckRaces && !Races.clean();
    if (!Ok || Raced) {
      OracleFailure F;
      F.FailKind =
          !Ok ? OracleFailure::Kind::RunError : OracleFailure::Kind::Race;
      F.Variant = "chain";
      F.Stage = "input";
      F.Detail = !Ok ? RunDiags.str() : describeRaces(Races);
      Res.Failures.push_back(F);
      Res.Passed = false;
      return Res;
    }
  }

  bool AnyFloat = false;
  for (const KernelFunction *K : Stages)
    AnyFloat |= kernelHasFloatArith(*K);
  Comparator Cmp{!AnyFloat, Opt.UlpTol, Opt.RelTol};
  Res.ExactCompare = Cmp.Exact;

  // Fusion legality + both sides of the design-space search.
  CompileOptions CO = Opt.Compile;
  CO.Jobs = 1;
  CO.Hook = Opt.Inject;
  DiagnosticsEngine CompDiags;
  GpuCompiler GC(M, CompDiags);
  ProgramCompileOutput Out = GC.compileProgram(Stages, CO);
  bool StageBests = true;
  for (const CompileOutput &SO : Out.StageOuts)
    StageBests &= SO.Best != nullptr;
  if (CompDiags.hasErrors() || Out.StageOuts.size() != Stages.size() ||
      !StageBests) {
    OracleFailure F;
    F.FailKind = OracleFailure::Kind::CompileError;
    F.Variant = "compile";
    F.Stage = "final";
    F.Detail = CompDiags.str();
    Res.Failures.push_back(F);
    Res.Passed = false;
    return Res;
  }
  if (Out.UseFused && Out.FusedOut.Best) {
    Res.BestBlockN = Out.FusedOut.BestVariant.BlockMergeN;
    Res.BestThreadM = Out.FusedOut.BestVariant.ThreadMergeM;
  }

  // The fused *naive* kernel is held to the strongest claim: bit-exact
  // agreement with the chain on the final stage's outputs, regardless of
  // float arithmetic — register/shared-stage placement must preserve the
  // per-element evaluation order exactly.
  if (Out.Fused) {
    ++Res.VariantsChecked;
    OracleFailure F;
    F.Variant = Out.Fused->name();
    F.Stage = "fusion";
    BufferSet FB;
    fillPipelineFuzzInputs(Stages, FB, Opt.InputSeed);
    DiagnosticsEngine RunDiags;
    RaceLog Races;
    bool Ok = Sim.runFunctional(*Out.Fused, FB, RunDiags,
                                Opt.CheckRaces ? &Races : nullptr);
    bool Raced = Opt.CheckRaces && !Races.clean();
    Comparator Bit{/*Exact=*/true, 0, 0.0};
    if (!Ok || Raced || !compareOutputs(Final, Ref, FB, Bit, F)) {
      F.FailKind = !Ok     ? OracleFailure::Kind::RunError
                   : Raced ? OracleFailure::Kind::Race
                           : OracleFailure::Kind::Mismatch;
      F.Detail = !Ok ? RunDiags.str()
                 : Raced
                     ? describeRaces(Races)
                     : "fused naive kernel diverges bit-wise from the "
                       "unfused chain";
      Res.Failures.push_back(F);
      Res.Passed = false;
    }
    // The fused kernel is new code (possibly with a staging barrier);
    // give it the same engine cross-check the chain got.
    if (Opt.CheckInterp) {
      std::string Detail;
      if (!crossCheckInterp(Sim, *Out.Fused, Opt.InputSeed, Detail)) {
        OracleFailure FI;
        FI.FailKind = OracleFailure::Kind::InterpDivergence;
        FI.Variant = Out.Fused->name();
        FI.Stage = "interp";
        FI.Detail = Detail;
        Res.Failures.push_back(FI);
        Res.Passed = false;
      }
    }
  }

  // Every compiled fused variant must match the chain within tolerance.
  if (Out.Fused) {
    for (const VariantResult &V : Out.FusedOut.Variants) {
      if (!V.Kernel)
        continue;
      ++Res.VariantsChecked;
      OracleFailure F;
      F.Variant = V.Kernel->name();
      F.BlockN = V.BlockMergeN;
      F.ThreadM = V.ThreadMergeM;
      F.Stage = "fused-search";
      BufferSet VB;
      fillPipelineFuzzInputs(Stages, VB, Opt.InputSeed);
      DiagnosticsEngine RunDiags;
      RaceLog Races;
      bool Ok = Sim.runFunctional(*V.Kernel, VB, RunDiags,
                                  Opt.CheckRaces ? &Races : nullptr);
      bool Raced = Opt.CheckRaces && !Races.clean();
      if (Ok && !Raced && compareOutputs(Final, Ref, VB, Cmp, F))
        continue;
      F.FailKind = !Ok     ? OracleFailure::Kind::RunError
                   : Raced ? OracleFailure::Kind::Race
                           : OracleFailure::Kind::Mismatch;
      F.Detail = !Ok ? RunDiags.str() : Raced ? describeRaces(Races) : "";
      Res.Failures.push_back(F);
      Res.Passed = false;
    }
  }

  // The unfused compiled side: each stage's winner chained in order.
  {
    ++Res.VariantsChecked;
    OracleFailure F;
    F.Variant = "unfused-best";
    F.Stage = "stage-search";
    std::vector<const KernelFunction *> Bests;
    for (const CompileOutput &SO : Out.StageOuts)
      Bests.push_back(SO.Best);
    BufferSet BB;
    fillPipelineFuzzInputs(Stages, BB, Opt.InputSeed);
    DiagnosticsEngine RunDiags;
    RaceLog Races;
    bool Ok = Sim.runPipelineFunctional(Bests, BB, RunDiags,
                                        Opt.CheckRaces ? &Races : nullptr);
    bool Raced = Opt.CheckRaces && !Races.clean();
    if (!Ok || Raced || !compareOutputs(Final, Ref, BB, Cmp, F)) {
      F.FailKind = !Ok     ? OracleFailure::Kind::RunError
                   : Raced ? OracleFailure::Kind::Race
                           : OracleFailure::Kind::Mismatch;
      F.Detail = !Ok ? RunDiags.str() : Raced ? describeRaces(Races) : "";
      Res.Failures.push_back(F);
      Res.Passed = false;
    }
  }
  return Res;
}

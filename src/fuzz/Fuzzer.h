//===-- fuzz/Fuzzer.h - Differential fuzzing driver -------------*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seed-parallel fuzzing loop: each seed deterministically generates a
/// naive kernel (fuzz/KernelGen), structurally deduplicates it against the
/// kernels earlier seeds produced (ast/Hash), round-trips it through the
/// parser, and differentially validates every optimization variant against
/// the naive semantics (fuzz/Oracle). Failing cases are minimized with
/// fuzz/Reducer under a predicate pinned to the original failure signature
/// (kind + blamed stage), and written out as a replayable .cu repro plus a
/// machine-readable .json failure record.
///
/// Seeds run concurrently on exec/ThreadPool; results are keyed by seed
/// index and reduced after the join, so a run's summary is identical for
/// any --jobs value.
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_FUZZ_FUZZER_H
#define GPUC_FUZZ_FUZZER_H

#include "fuzz/Oracle.h"
#include "fuzz/Reducer.h"

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace gpuc {

struct FuzzOptions {
  /// Seed range: [FirstSeed, FirstSeed + NumSeeds).
  unsigned FirstSeed = 0;
  unsigned NumSeeds = 100;
  /// Concurrency across seeds (0 = hardware). Each case compiles and
  /// simulates serially inside its lane.
  int Jobs = 0;
  /// Minimize failing cases before reporting them.
  bool ReduceFailures = true;
  /// Generate multi-kernel pipelines (fuzz/KernelGen chain templates) and
  /// run the fusion-differential oracle instead of the single-kernel one.
  /// The reducer only understands single kernels, so pipeline repros are
  /// reported unminimized.
  bool Pipeline = false;
  /// Run the layout-differential oracle (fuzz/Oracle runLayoutOracle)
  /// instead of the full design-space one: every affine layout family
  /// point is exercised against the naive kernel — pure block-id remaps
  /// bit-for-bit, compiled family points within tolerance, all
  /// scalar-vs-vector cross-checked. Mutually exclusive with Pipeline.
  bool Layout = false;
  /// Directory for seed<N>.cu / seed<N>.json failure artifacts; empty
  /// disables writing.
  std::string OutDir;
  /// Oracle configuration. InputSeed is remixed per seed for input
  /// diversity; Hook/Jobs are owned by the oracle (see OracleOptions).
  OracleOptions Oracle;
};

/// Outcome of one seed.
struct FuzzCase {
  enum class Status { Passed, Duplicate, Failed };
  unsigned Seed = 0;
  Status St = Status::Passed;
  /// Generator template that produced the kernel ("map1d", "mmlike", ...).
  std::string Shape;
  int VariantsChecked = 0;
  /// The generated naive source (kept only for failing cases).
  std::string Source;
  /// First oracle failure (the minimization target).
  OracleFailure Failure;
  /// Minimized repro (equals Source when reduction is disabled or stuck).
  std::string Reduced;
  ReduceStats Reduce;
};

struct FuzzSummary {
  int Cases = 0;
  int Passed = 0;
  int Duplicates = 0;
  int Failed = 0;
  long long VariantsChecked = 0;
  /// Shape -> number of non-duplicate cases exercising it.
  std::map<std::string, int> ShapeCounts;
  /// Failing cases, ascending by seed.
  std::vector<FuzzCase> Failures;
};

/// Display name for an oracle failure kind ("compile-error", "run-error",
/// "mismatch", "race").
const char *failureKindName(OracleFailure::Kind K);

/// Renders the machine-readable failure record for one failing case.
std::string failureRecordJson(const FuzzCase &C);

/// Parses \p Source and runs the differential oracle on it. \returns false
/// when the source does not parse (diagnostics in \p ParseErrors) — used by
/// gpuc-fuzz --check and by the reducer predicate.
bool checkKernelSource(const std::string &Source, const OracleOptions &Opt,
                       OracleResult &Result, std::string &ParseErrors);

/// Pipeline analogue of checkKernelSource: parses \p Source as a
/// multi-kernel translation unit (Parser::parseProgram) and runs the
/// fusion-differential oracle on the chain. \returns false when the
/// source does not parse as a pipeline of >= 2 kernels.
bool checkPipelineSource(const std::string &Source, const OracleOptions &Opt,
                         OracleResult &Result, std::string &ParseErrors);

/// Layout analogue of checkKernelSource: parses \p Source and runs the
/// layout-differential oracle (runLayoutOracle) on it.
bool checkLayoutSource(const std::string &Source, const OracleOptions &Opt,
                       OracleResult &Result, std::string &ParseErrors);

/// Runs the fuzzing loop. Per-seed progress lines go to \p Progress when
/// non-null (failures and a final summary are always the caller's job).
FuzzSummary runFuzz(const FuzzOptions &Opt, std::ostream *Progress = nullptr);

} // namespace gpuc

#endif // GPUC_FUZZ_FUZZER_H

//===-- fuzz/Reducer.h - Failing-kernel minimization ------------*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy delta-debugging over the naive-kernel dialect: a failing kernel
/// is re-parsed, candidate deletions/simplifications are applied one at a
/// time, and an edit is kept whenever the caller's predicate confirms the
/// failure still reproduces on the re-printed source. Passes (in order):
/// statement deletion, loop unwrapping (iterator substituted with its
/// initial value), if unwrapping / else removal, expression shrinking
/// (operand hoisting, call unwrapping, load-to-literal), and unused
/// parameter removal. Runs to a fixed point; every intermediate candidate
/// is a well-formed dialect program, so the minimized repro is directly
/// replayable with gpuc-fuzz --check.
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_FUZZ_REDUCER_H
#define GPUC_FUZZ_REDUCER_H

#include <functional>
#include <string>

namespace gpuc {

/// \returns true when the candidate source still reproduces the failure
/// being minimized (parse failures must return false).
using FailurePredicate = std::function<bool(const std::string &Source)>;

struct ReduceStats {
  /// Candidate edits tried / kept.
  int Attempts = 0;
  int Accepted = 0;
  /// Full pass cycles until the fixed point.
  int Rounds = 0;
};

/// Minimizes \p Source under \p StillFails. The input is assumed to fail
/// (callers check before invoking); the result is the smallest source the
/// greedy passes reach, never larger than the input.
std::string reduceKernelSource(const std::string &Source,
                               const FailurePredicate &StillFails,
                               ReduceStats *Stats = nullptr);

} // namespace gpuc

#endif // GPUC_FUZZ_REDUCER_H

//===-- fuzz/Reducer.cpp - Failing-kernel minimization --------------------===//

#include "fuzz/Reducer.h"

#include "ast/Printer.h"
#include "ast/Subst.h"
#include "ast/Walk.h"
#include "parser/Parser.h"

#include <vector>

using namespace gpuc;

namespace {

/// Parses \p Source silently. \returns null on any diagnostic error.
KernelFunction *parseQuiet(Module &M, const std::string &Source) {
  DiagnosticsEngine Diags;
  Parser P(Source, Diags);
  KernelFunction *K = P.parseKernel(M);
  return (K && !Diags.hasErrors()) ? K : nullptr;
}

/// Visits every compound statement under \p S (including \p S).
void forEachCompound(CompoundStmt *S,
                     const std::function<void(CompoundStmt *)> &Fn) {
  Fn(S);
  for (Stmt *Child : S->body()) {
    if (auto *F = dyn_cast<ForStmt>(Child))
      forEachCompound(F->body(), Fn);
    else if (auto *If = dyn_cast<IfStmt>(Child)) {
      forEachCompound(If->thenBody(), Fn);
      if (If->elseBody())
        forEachCompound(If->elseBody(), Fn);
    }
  }
}

/// Deletes the \p Ordinal-th statement (pre-order over compounds).
/// \returns true when the ordinal existed.
bool deleteStmtAt(KernelFunction &K, int Ordinal) {
  int N = 0;
  bool Done = false;
  forEachCompound(K.body(), [&](CompoundStmt *C) {
    if (Done)
      return;
    auto &Body = C->body();
    for (size_t I = 0; I < Body.size(); ++I) {
      if (N++ == Ordinal) {
        Body.erase(Body.begin() + static_cast<long>(I));
        Done = true;
        return;
      }
    }
  });
  return Done;
}

int countStmts(KernelFunction &K) {
  int N = 0;
  forEachCompound(K.body(), [&](CompoundStmt *C) {
    N += static_cast<int>(C->body().size());
  });
  return N;
}

/// Replaces the \p Ordinal-th ForStmt with its body, substituting the
/// iterator with the loop's initial value (a single-iteration unroll).
bool unwrapForAt(Module &M, KernelFunction &K, int Ordinal) {
  int N = 0;
  bool Done = false;
  ASTContext &Ctx = M.context();
  forEachCompound(K.body(), [&](CompoundStmt *C) {
    if (Done)
      return;
    auto &Body = C->body();
    for (size_t I = 0; I < Body.size(); ++I) {
      auto *F = dyn_cast<ForStmt>(Body[I]);
      if (!F || N++ != Ordinal)
        continue;
      substVar(Ctx, F->body(), F->iterName(), F->init());
      std::vector<Stmt *> Inner = F->body()->body();
      Body.erase(Body.begin() + static_cast<long>(I));
      Body.insert(Body.begin() + static_cast<long>(I), Inner.begin(),
                  Inner.end());
      Done = true;
      return;
    }
  });
  return Done;
}

/// Replaces the \p Ordinal-th IfStmt with its then-branch contents
/// (DropElse false) or just deletes its else branch (DropElse true).
bool unwrapIfAt(KernelFunction &K, int Ordinal, bool DropElseOnly) {
  int N = 0;
  bool Done = false;
  forEachCompound(K.body(), [&](CompoundStmt *C) {
    if (Done)
      return;
    auto &Body = C->body();
    for (size_t I = 0; I < Body.size(); ++I) {
      auto *If = dyn_cast<IfStmt>(Body[I]);
      if (!If || N++ != Ordinal)
        continue;
      if (DropElseOnly) {
        if (!If->elseBody())
          return; // nothing to drop; counts as a failed edit
        If->setElseBody(nullptr);
      } else {
        std::vector<Stmt *> Inner = If->thenBody()->body();
        Body.erase(Body.begin() + static_cast<long>(I));
        Body.insert(Body.begin() + static_cast<long>(I), Inner.begin(),
                    Inner.end());
      }
      Done = true;
      return;
    }
  });
  return Done;
}

/// The expression roots the shrink pass may rewrite: assignment RHS and
/// scalar-decl initializers (LHS / indices / loop headers stay intact so
/// every candidate remains well-formed).
void forEachShrinkRoot(KernelFunction &K,
                       const std::function<void(Expr **)> &Fn) {
  forEachStmt(K.body(), [&](Stmt *S) {
    if (auto *A = dyn_cast<AssignStmt>(S)) {
      Expr *R = A->rhs();
      Expr *Orig = R;
      Fn(&R);
      if (R != Orig)
        A->setRHS(R);
    } else if (auto *D = dyn_cast<DeclStmt>(S)) {
      if (D->init()) {
        Expr *R = D->init();
        Expr *Orig = R;
        Fn(&R);
        if (R != Orig)
          D->setInit(R);
      }
    }
  });
}

/// Shrinks the \p Ordinal-th shrinkable node across all shrink roots:
///   Binary -> lhs | rhs, Call -> first arg of matching type,
///   float load -> 1.0f. \p Choice picks the replacement flavor.
bool shrinkExprAt(Module &M, KernelFunction &K, int Ordinal, int Choice) {
  int N = 0;
  bool Done = false;
  ASTContext &Ctx = M.context();
  forEachShrinkRoot(K, [&](Expr **Root) {
    if (Done)
      return;
    *Root = rewriteExpr(*Root, [&](Expr *E) -> Expr * {
      if (Done)
        return nullptr;
      Expr *Repl = nullptr;
      if (auto *B = dyn_cast<Binary>(E)) {
        Expr *Cand = Choice == 0 ? B->lhs() : B->rhs();
        if (Cand->type().kind() == B->type().kind())
          Repl = Cand;
      } else if (auto *C = dyn_cast<Call>(E)) {
        if (!C->args().empty() &&
            C->args()[0]->type().kind() == C->type().kind())
          Repl = C->args()[0];
      } else if (auto *A = dyn_cast<ArrayRef>(E)) {
        if (A->type().isFloat() && A->vecWidth() == 1)
          Repl = Ctx.floatLit(1.0);
      }
      if (!Repl)
        return nullptr;
      if (N++ != Ordinal)
        return nullptr;
      Done = true;
      return Repl;
    });
  });
  return Done;
}

/// Removes parameters never referenced in the body (and not the output),
/// with their scalar bindings. Single-shot cleanup edit.
bool dropUnusedParams(KernelFunction &K) {
  auto &Params = K.params();
  bool Any = false;
  for (size_t I = Params.size(); I-- > 0;) {
    const ParamDecl &P = Params[I];
    if (P.IsOutput)
      continue;
    bool Used = containsVar(K.body(), P.Name);
    if (!Used && P.IsArray) {
      // Array uses are ArrayRef bases, not VarRefs.
      forEachExpr(K.body(), [&](Expr *E) {
        if (auto *A = dyn_cast<ArrayRef>(E))
          if (A->base() == P.Name)
            Used = true;
      });
    }
    if (Used)
      continue;
    Params.erase(Params.begin() + static_cast<long>(I));
    Any = true;
  }
  return Any;
}

} // namespace

std::string gpuc::reduceKernelSource(const std::string &Source,
                                     const FailurePredicate &StillFails,
                                     ReduceStats *Stats) {
  std::string Current = Source;
  ReduceStats Local;
  ReduceStats &St = Stats ? *Stats : Local;

  /// Applies one parametrized edit to a fresh parse of Current and
  /// accepts the result when the failure survives.
  auto Try = [&](const std::function<bool(Module &, KernelFunction &)>
                     &Edit) {
    Module M;
    KernelFunction *K = parseQuiet(M, Current);
    if (!K)
      return false;
    if (!Edit(M, *K))
      return false;
    std::string Cand = printNaiveKernel(*K);
    ++St.Attempts;
    if (Cand == Current)
      return false;
    {
      // The edit must leave a parseable kernel behind; otherwise the
      // predicate (which parses) rejects it anyway, but skip the cost.
      Module Check;
      if (!parseQuiet(Check, Cand))
        return false;
    }
    if (!StillFails(Cand))
      return false;
    Current = Cand;
    ++St.Accepted;
    return true;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++St.Rounds;

    // Pass 1: statement deletion, back to front (later ordinals die
    // first, so earlier ordinals stay valid within the sweep).
    {
      Module M;
      KernelFunction *K = parseQuiet(M, Current);
      if (!K)
        break;
      for (int I = countStmts(*K) - 1; I >= 0; --I)
        Changed |= Try([I](Module &, KernelFunction &K2) {
          return deleteStmtAt(K2, I);
        });
    }

    // Pass 2: loop unwrapping (single-iteration unroll).
    for (int I = 8; I >= 0; --I)
      Changed |= Try([I](Module &M2, KernelFunction &K2) {
        return unwrapForAt(M2, K2, I);
      });

    // Pass 3: else removal, then whole-if unwrapping.
    for (int I = 8; I >= 0; --I)
      Changed |= Try([I](Module &, KernelFunction &K2) {
        return unwrapIfAt(K2, I, /*DropElseOnly=*/true);
      });
    for (int I = 8; I >= 0; --I)
      Changed |= Try([I](Module &, KernelFunction &K2) {
        return unwrapIfAt(K2, I, /*DropElseOnly=*/false);
      });

    // Pass 4: expression shrinking. Ordinal space is rebuilt per parse;
    // sweep a generous fixed range front to back (hoisting a child can
    // expose new shrinks, caught by the outer fixed point).
    for (int I = 0; I < 48; ++I)
      for (int Choice = 0; Choice < 2; ++Choice)
        Changed |= Try([I, Choice](Module &M2, KernelFunction &K2) {
          return shrinkExprAt(M2, K2, I, Choice);
        });

    // Pass 5: drop now-unused parameters.
    Changed |= Try([](Module &, KernelFunction &K2) {
      return dropUnusedParams(K2);
    });
  }
  return Current;
}

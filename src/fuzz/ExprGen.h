//===-- fuzz/ExprGen.h - Random expression generation -----------*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic random float expressions over {idx, literals, + - * and
/// math calls}, each paired with a host-side evaluator so tests can check
/// the interpreter against an independent computation. Promoted from the
/// property tests so the kernel fuzzer (fuzz/KernelGen.h) and the tests
/// share one generator.
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_FUZZ_EXPRGEN_H
#define GPUC_FUZZ_EXPRGEN_H

#include "ast/Builder.h"

#include <algorithm>
#include <functional>
#include <random>
#include <utility>

namespace gpuc {

/// Deterministic random expression over {idx, literals, + - * and calls},
/// together with a host-side evaluator.
struct ExprGen {
  std::mt19937 Rng;
  KernelBuilder &B;

  ExprGen(unsigned Seed, KernelBuilder &B) : Rng(Seed), B(B) {}

  int irand(int Lo, int Hi) {
    return std::uniform_int_distribution<int>(Lo, Hi)(Rng);
  }

  /// Builds a float expression and a matching evaluator of idx.
  std::pair<Expr *, std::function<float(int)>> gen(int Depth) {
    if (Depth == 0) {
      switch (irand(0, 2)) {
      case 0: {
        float V = static_cast<float>(irand(-8, 8)) * 0.25f;
        return {B.f(V), [V](int) { return V; }};
      }
      case 1:
        return {B.ctx().bin(BinOp::Add, B.idx(), B.i(0)),
                [](int I) { return static_cast<float>(I); }};
      default: {
        int C = irand(1, 9);
        return {B.i(C), [C](int) { return static_cast<float>(C); }};
      }
      }
    }
    auto [L, FL] = gen(Depth - 1);
    auto [R, FR] = gen(Depth - 1);
    switch (irand(0, 3)) {
    case 0:
      return {B.add(L, R), [FL, FR](int I) { return FL(I) + FR(I); }};
    case 1:
      return {B.sub(L, R), [FL, FR](int I) { return FL(I) - FR(I); }};
    case 2:
      return {B.mul(L, R), [FL, FR](int I) { return FL(I) * FR(I); }};
    default:
      return {B.ctx().call("fmaxf", {L, R}, Type::floatTy()),
              [FL, FR](int I) { return std::max(FL(I), FR(I)); }};
    }
  }
};

} // namespace gpuc

#endif // GPUC_FUZZ_EXPRGEN_H

//===-- analysis/RaceDetector.cpp - Static shared-memory races ------------===//

#include "analysis/RaceDetector.h"

#include "analysis/Dataflow.h"

#include "ast/Printer.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

using namespace gpuc;

std::string RaceFinding::str() const {
  std::string Kind = WriteWrite ? "write-write" : "write-read";
  std::string S = strFormat(
      "shared-memory race on '%s' word %lld in barrier phase %d: "
      "%s conflict between thread (%d,%d) and thread (%d,%d)",
      Array.c_str(), Word, Phase, Kind.c_str(), T1x, T1y, T2x, T2y);
  if (Ref1)
    S += strFormat("; first access %s", printExpr(Ref1).c_str());
  if (Ref2 && Ref2 != Ref1)
    S += strFormat(", second access %s", printExpr(Ref2).c_str());
  return S;
}

namespace {

/// First occupant of one shared word within a phase.
struct Occupant {
  int Tx = -1, Ty = -1;
  const SharedAccess *A = nullptr;
  /// Evaluated source element for staging stores (SharedAccess::HasSrc).
  bool HasSrc = false;
  long long Src = 0;
  bool valid() const { return Tx >= 0; }
};

class RaceScan {
public:
  RaceScan(const KernelFunction &K, const RaceDetectOptions &Opt)
      : K(K), Opt(Opt) {}

  RaceReport run() {
    PhaseModel Model = buildPhaseModel(K, Opt.Phases);
    Report.Analyzable = Model.Analyzable;
    Report.Sampled = Model.Sampled;
    Report.Notes = Model.Problems;
    if (!Model.Analyzable)
      return std::move(Report);

    Facts = runDataflow(K);

    // Word extents of every write per (phase, array), from the dataflow
    // engine's range facts; unknown when any write's extent is unknown.
    // An unresolved *read* whose word interval is disjoint from all of its
    // phase's write extents provably cannot race — the range facts triage
    // what the exact symbolic enumeration cannot model.
    struct WriteExtents {
      std::vector<Interval> Extents;
      bool AllKnown = true;
    };
    std::map<std::pair<int, const DeclStmt *>, WriteExtents> Writes;
    for (const SharedAccess &A : Model.Accesses) {
      if (!A.IsWrite)
        continue;
      WriteExtents &W = Writes[{A.Phase, A.Decl}];
      Interval Ext = wordExtent(A);
      W.AllKnown &= Ext.Known;
      W.Extents.push_back(Ext);
    }
    auto RangeTriaged = [&](const SharedAccess &A) {
      if (A.IsWrite)
        return false;
      Interval RE = wordExtent(A);
      if (!RE.Known)
        return false;
      auto It = Writes.find({A.Phase, A.Decl});
      if (It == Writes.end())
        return true; // no writes to this array in this phase at all
      if (!It->second.AllKnown)
        return false;
      for (const Interval &WE : It->second.Extents)
        if (RE.Lo <= WE.Hi && WE.Lo <= RE.Hi)
          return false;
      return true;
    };

    // Group accesses by (phase, array); skip groups with no writes.
    std::map<std::pair<int, const DeclStmt *>,
             std::vector<const SharedAccess *>>
        Groups;
    for (const SharedAccess &A : Model.Accesses) {
      if (!A.Resolved) {
        if (!RangeTriaged(A))
          noteUnresolved(A);
        continue;
      }
      Groups[{A.Phase, A.Decl}].push_back(&A);
    }
    for (const auto &[Key, Accesses] : Groups) {
      bool AnyWrite = false;
      for (const SharedAccess *A : Accesses)
        AnyWrite |= A->IsWrite;
      if (AnyWrite)
        scanGroup(Key.first, Accesses);
    }
    std::sort(Report.Findings.begin(), Report.Findings.end(),
              [](const RaceFinding &A, const RaceFinding &B) {
                return std::tie(A.Phase, A.Word) < std::tie(B.Phase, B.Word);
              });
    return std::move(Report);
  }

private:
  /// Closed word interval [first, last] the access may touch, from the
  /// dataflow engine; unknown when the engine has no fact for it.
  Interval wordExtent(const SharedAccess &A) const {
    const AccessFact *F = Facts.factFor(A.Ref);
    if (!F || !F->Words.Known)
      return Interval::top();
    return Interval::make(F->Words.Lo, F->Words.Hi + F->Lanes - 1);
  }

  void noteUnresolved(const SharedAccess &A) {
    std::string Expr = A.Ref ? printExpr(A.Ref) : std::string("<access>");
    Report.Notes.push_back(strFormat(
        "shared access %s has a non-affine subscript; race-freedom not "
        "proved for it",
        Expr.c_str()));
  }

  /// Distinct sample blocks: shared addresses rarely depend on block ids,
  /// but when they do (through expanded idx/idy), corner blocks witness
  /// the extremes.
  std::vector<std::pair<long long, long long>>
  sampleBlocks(const std::vector<const SharedAccess *> &Accesses) const {
    bool NeedsBlocks = false;
    for (const SharedAccess *A : Accesses) {
      NeedsBlocks |= A->FlatFloat.CBidx != 0 || A->FlatFloat.CBidy != 0;
      for (const AccessGuard &G : A->Guards)
        NeedsBlocks |= G.Delta.CBidx != 0 || G.Delta.CBidy != 0;
    }
    if (!NeedsBlocks)
      return {{0, 0}};
    const LaunchConfig &L = K.launch();
    std::set<std::pair<long long, long long>> S;
    for (long long Bx : {0LL, L.GridDimX - 1})
      for (long long By : {0LL, L.GridDimY - 1})
        S.insert({Bx, By});
    return {S.begin(), S.end()};
  }

  void scanGroup(int Phase, const std::vector<const SharedAccess *> &Group) {
    for (auto [Bx, By] : sampleBlocks(Group)) {
      Words.clear();
      for (const SharedAccess *A : Group)
        enumerateAccess(*A, Phase, Bx, By);
    }
  }

  void enumerateAccess(const SharedAccess &A, int Phase, long long Bx,
                       long long By) {
    // Only loops whose iterator appears in the address or a guard matter.
    std::set<std::string> Needed;
    for (const auto &[Name, C] : A.FlatFloat.LoopCoeffs)
      if (C != 0)
        Needed.insert(Name);
    for (const AccessGuard &G : A.Guards)
      for (const auto &[Name, C] : G.Delta.LoopCoeffs)
        if (C != 0)
          Needed.insert(Name);

    std::vector<const EnumLoop *> Loops;
    for (const EnumLoop &L : A.Loops)
      if (Needed.count(L.Name)) {
        if (!L.Resolved || L.Values.empty()) {
          noteUnresolved(A);
          return;
        }
        Loops.push_back(&L);
        Needed.erase(L.Name);
      }
    if (!Needed.empty()) {
      // Iterator not bound by any enclosing loop (e.g. a local int): the
      // address is effectively data-dependent.
      noteUnresolved(A);
      return;
    }

    long long Combos = 1;
    for (const EnumLoop *L : Loops)
      Combos *= static_cast<long long>(L->Values.size());
    if (Combos > Opt.MaxCombos) {
      Report.Sampled = true;
      Report.Notes.push_back(strFormat(
          "access %s enumerates %lld loop combinations; sampled to %lld",
          printExpr(A.Ref).c_str(), Combos, Opt.MaxCombos));
    }

    // The same-value signature is usable only when every loop iterator it
    // mentions is enumerated here anyway; otherwise drop it (conservative:
    // the overlap is then reported).
    bool UseSrc = A.HasSrc && A.Lanes == 1;
    if (UseSrc) {
      std::set<std::string> Bound;
      for (const EnumLoop *EL : Loops)
        Bound.insert(EL->Name);
      for (const auto &[Name, C] : A.SrcAddr.LoopCoeffs)
        if (C != 0 && !Bound.count(Name))
          UseSrc = false;
    }

    const LaunchConfig &L = K.launch();
    std::map<std::string, long long> Values;
    std::vector<size_t> Pos(Loops.size(), 0);
    long long Done = 0;
    do {
      for (size_t I = 0; I < Loops.size(); ++I)
        Values[Loops[I]->Name] = Loops[I]->Values[Pos[I]];
      for (int Ty = 0; Ty < L.BlockDimY; ++Ty) {
        for (int Tx = 0; Tx < L.BlockDimX; ++Tx) {
          bool Live = true;
          for (const AccessGuard &G : A.Guards)
            if (!guardHolds(G, Tx, Ty, Bx, By, Values)) {
              Live = false;
              break;
            }
          if (!Live)
            continue;
          long long Base = A.FlatFloat.evaluate(Tx, Ty, Bx, By, Values);
          long long Src =
              UseSrc ? A.SrcAddr.evaluate(Tx, Ty, Bx, By, Values) : 0;
          for (int Lane = 0; Lane < A.Lanes; ++Lane)
            touch(A, Phase, Base + Lane, Tx, Ty, UseSrc, Src);
        }
      }
      ++Done;
    } while (Done < Opt.MaxCombos && advance(Pos, Loops));
  }

  static bool advance(std::vector<size_t> &Pos,
                      const std::vector<const EnumLoop *> &Loops) {
    for (size_t I = Pos.size(); I-- > 0;) {
      if (++Pos[I] < Loops[I]->Values.size())
        return true;
      Pos[I] = 0;
    }
    return false;
  }

  void touch(const SharedAccess &A, int Phase, long long Word, int Tx,
             int Ty, bool HasSrc = false, long long Src = 0) {
    WordState &S = Words[Word];
    auto Differs = [&](const Occupant &O) {
      return O.valid() && (O.Tx != Tx || O.Ty != Ty);
    };
    if (A.IsWrite) {
      if (Differs(S.W)) {
        // Both writers copying the same element of the same global array
        // store identical values: the redundant halo-load idiom, benign.
        bool Benign = HasSrc && S.W.HasSrc && S.W.Src == Src &&
                      S.W.A->SrcArray == A.SrcArray;
        if (!Benign)
          record(A, *S.W.A, Phase, Word, Tx, Ty, S.W.Tx, S.W.Ty,
                 /*WriteWrite=*/true);
      } else if (!S.W.valid())
        S.W = {Tx, Ty, &A, HasSrc, Src};
      // Two distinct recorded readers guarantee at least one conflicts
      // with any writer thread.
      if (Differs(S.R1))
        record(A, *S.R1.A, Phase, Word, Tx, Ty, S.R1.Tx, S.R1.Ty,
               /*WriteWrite=*/false);
      else if (Differs(S.R2))
        record(A, *S.R2.A, Phase, Word, Tx, Ty, S.R2.Tx, S.R2.Ty,
               /*WriteWrite=*/false);
      return;
    }
    if (Differs(S.W))
      record(*S.W.A, A, Phase, Word, S.W.Tx, S.W.Ty, Tx, Ty,
             /*WriteWrite=*/false);
    if (!S.R1.valid())
      S.R1 = {Tx, Ty, &A};
    else if (Differs(S.R1) && !S.R2.valid())
      S.R2 = {Tx, Ty, &A};
  }

  void record(const SharedAccess &A1, const SharedAccess &A2, int Phase,
              long long Word, int T1x, int T1y, int T2x, int T2y,
              bool WriteWrite) {
    // One finding per (site pair, phase, kind) keeps reports readable.
    auto Key = std::make_tuple(A1.Ref, A2.Ref, Phase, WriteWrite);
    if (!Seen.insert(Key).second)
      return;
    if (static_cast<int>(Report.Findings.size()) >= Opt.MaxFindings)
      return;
    RaceFinding F;
    F.Array = A1.Decl->name();
    F.WriteWrite = WriteWrite;
    F.Phase = Phase;
    F.Word = Word;
    F.T1x = T1x;
    F.T1y = T1y;
    F.T2x = T2x;
    F.T2y = T2y;
    F.Ref1 = A1.Ref;
    F.Ref2 = A2.Ref;
    F.Loc1 = A1.Loc;
    F.Loc2 = A2.Loc;
    Report.Findings.push_back(std::move(F));
  }

  struct WordState {
    Occupant W, R1, R2;
  };

  const KernelFunction &K;
  const RaceDetectOptions &Opt;
  RaceReport Report;
  DataflowResult Facts;
  std::unordered_map<long long, WordState> Words;
  std::set<std::tuple<const ArrayRef *, const ArrayRef *, int, bool>> Seen;
};

} // namespace

RaceReport gpuc::detectSharedRaces(const KernelFunction &K,
                                   const RaceDetectOptions &Opt) {
  return RaceScan(K, Opt).run();
}

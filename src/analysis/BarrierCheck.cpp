//===-- analysis/BarrierCheck.cpp - Barrier-validity proofs ---------------===//

#include "analysis/BarrierCheck.h"

#include <algorithm>

using namespace gpuc;

std::vector<BarrierIssue> gpuc::checkBarriers(const DataflowResult &Result) {
  std::vector<BarrierIssue> Issues;
  for (const BarrierFact &F : Result.Barriers) {
    if (F.Uniformity == Verdict::Proven)
      continue;
    Issues.push_back({F.Uniformity, F.IsGlobal, F.Reason});
  }
  std::stable_sort(Issues.begin(), Issues.end(),
                   [](const BarrierIssue &A, const BarrierIssue &B) {
                     return A.Uniformity == Verdict::Violation &&
                            B.Uniformity != Verdict::Violation;
                   });
  return Issues;
}

std::vector<BarrierIssue> gpuc::checkBarriers(const KernelFunction &K) {
  return checkBarriers(runDataflow(K));
}

//===-- analysis/BarrierCheck.h - Barrier-validity proofs -------*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Barrier-validity verification on top of the dataflow engine: every
/// __syncthreads must execute under thread-uniform control flow with
/// equal trip counts in every enclosing loop, and __globalSync
/// additionally under block-uniform control flow. This replaces the
/// Verifier's old syntactic special case (thread-dependent trip counts on
/// for loops) with a semantic proof: conditions whose canonical affine
/// form is thread-invariant are accepted, and divergence the straddle
/// test proves is reported as a hard Violation rather than a maybe.
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_ANALYSIS_BARRIERCHECK_H
#define GPUC_ANALYSIS_BARRIERCHECK_H

#include "analysis/Dataflow.h"
#include "ast/Kernel.h"

#include <string>
#include <vector>

namespace gpuc {

/// One barrier that could not be proven valid.
struct BarrierIssue {
  Verdict Uniformity = Verdict::Possible;
  bool IsGlobal = false;
  std::string Message;
};

/// Runs the dataflow engine over \p K (or reuses \p Result when the caller
/// already has one) and returns every barrier not Proven uniform,
/// Violations first.
std::vector<BarrierIssue> checkBarriers(const KernelFunction &K);
std::vector<BarrierIssue> checkBarriers(const DataflowResult &Result);

} // namespace gpuc

#endif // GPUC_ANALYSIS_BARRIERCHECK_H

//===-- analysis/Dataflow.h - Abstract-interpretation engine ----*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward dataflow over the kernel AST, computing for every program point
///
///  * per-variable facts: a canonical affine form over tid/bid and
///    in-scope loop iterators (when one exists), a value interval
///    (analysis/Ranges.h) and a divergence fact (analysis/Divergence.h);
///  * per-array-access facts: the flat word-offset interval the simulator
///    bounds-checks, with a three-valued verdict — Proven in bounds,
///    Possible, or Violation (provably executes and provably faults);
///  * per-barrier facts: whether the __syncthreads / __globalSync is
///    proven to execute under uniform control flow with equal trip
///    counts, refuted (Violation), or merely not proven (Possible).
///
/// Loops run to a small fixpoint with widening; if branches refine the
/// environment by the branch condition (interval clipping on compared
/// variables plus affine guard constraints clipped into collinear access
/// forms) and join afterwards. Verdict soundness contract, enforced by
/// gpuc-fuzz --check-static: a kernel whose accesses are all Proven and
/// whose barriers are all Proven can never fail the dynamic sanitizer's
/// bounds or barrier checks; a Violation can never survive a dynamic run
/// that reaches it. Possible constrains nothing.
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_ANALYSIS_DATAFLOW_H
#define GPUC_ANALYSIS_DATAFLOW_H

#include "analysis/Divergence.h"
#include "analysis/Ranges.h"
#include "ast/Affine.h"
#include "ast/Kernel.h"

#include <map>
#include <string>
#include <vector>

namespace gpuc {

/// Three-valued judgment about a property of one program point.
enum class Verdict { Proven, Possible, Violation };

/// "proven" / "possible" / "violation".
const char *verdictName(Verdict V);

/// Abstract value of one scalar variable.
struct VarFact {
  /// Canonical affine form over builtins and in-scope loop iterators
  /// (other locals are spliced in at build time).
  bool HasForm = false;
  AffineExpr Form;
  Interval Range;
  DivFact Div;

  bool operator==(const VarFact &O) const;
};

/// One syntactic array access.
struct AccessFact {
  const ArrayRef *Ref = nullptr;
  std::string Array;
  bool IsShared = false;
  bool IsStore = false;
  /// Flat word (4-byte) offset interval of the access base, matching the
  /// simulator's bounds check: valid iff 0 <= off && off + Lanes <=
  /// TotalWords.
  Interval Words;
  /// Declared extent of the array in words.
  long long TotalWords = 0;
  /// Words touched per access (element lanes, or the reinterpreted
  /// vector width).
  int Lanes = 1;
  Verdict Bounds = Verdict::Possible;
  /// Divergence of the address across threads/blocks.
  DivFact AddrDiv;
  /// Under an if/while or a possibly-zero-trip loop: the access need not
  /// execute on every thread.
  bool Guarded = false;
  SourceLocation Loc;
};

/// One barrier statement.
struct BarrierFact {
  const SyncStmt *Sync = nullptr;
  bool IsGlobal = false;
  Verdict Uniformity = Verdict::Proven;
  /// Human-readable reason when not Proven.
  std::string Reason;
};

struct DataflowResult {
  std::vector<AccessFact> Accesses;
  std::vector<BarrierFact> Barriers;
  /// Variable facts at kernel exit (golden-tested).
  std::map<std::string, VarFact> ExitVars;

  /// Every access proven in bounds.
  bool boundsClean() const;
  /// Every barrier proven uniform.
  bool barriersClean() const;
  bool anyViolation() const;
  const AccessFact *factFor(const ArrayRef *Ref) const;
};

/// Runs the engine over \p K. The kernel must verify structurally
/// (ast/Verifier.h); unresolved symbols degrade facts to top rather than
/// crash.
DataflowResult runDataflow(const KernelFunction &K);

} // namespace gpuc

#endif // GPUC_ANALYSIS_DATAFLOW_H

//===-- analysis/SharedAccess.h - Barrier phases and shared accesses -*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Partitions a kernel into barrier-delimited phases and collects every
/// __shared__ access with a symbolic per-thread address, the input to the
/// static race detector and the shared-memory lints.
///
/// Phases are dynamic: a loop whose body contains a barrier is symbolically
/// unrolled (its iterator becomes a concrete value per unrolled iteration),
/// so the segment after the last barrier of iteration i and the segment
/// before the first barrier of iteration i+1 correctly land in the same
/// phase — the classic "missing second __syncthreads()" race window.
/// Barrier-free loops stay symbolic; their iterators are enumerated later
/// (capped, relying on the same periodicity argument Section 3.2 uses for
/// coalescing checks). Barriers under divergent control flow or inside
/// loops whose trip count cannot be resolved make the kernel unanalyzable,
/// which is reported rather than silently ignored.
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_ANALYSIS_SHAREDACCESS_H
#define GPUC_ANALYSIS_SHAREDACCESS_H

#include "ast/Affine.h"

#include <map>
#include <string>
#include <vector>

namespace gpuc {

/// One barrier-free enclosing loop of an access, with the iterator values
/// to enumerate (first FreeLoopValueCap values; behaviour is periodic for
/// affine subscripts, mirroring the 16-iteration argument of Section 3.2).
struct EnumLoop {
  std::string Name;
  std::vector<long long> Values;
  long long Min = 0;
  long long Max = 0;
  bool Capped = false;
  bool Resolved = false;
};

/// A control-flow guard from an enclosing if: Delta(cmp)0 must hold for the
/// access to execute (Delta = lhs - rhs of the condition). Unresolved
/// guards (non-affine conditions) are treated as may-true.
struct AccessGuard {
  AffineExpr Delta;
  BinOp Cmp = BinOp::LT;
};

/// One __shared__ access placed into a phase.
struct SharedAccess {
  const ArrayRef *Ref = nullptr;
  const DeclStmt *Decl = nullptr;
  bool IsWrite = false;
  int Phase = 0;
  /// Flat float-word offset into the array (element index scaled by the
  /// element's float lanes); sync-loop iterators are already substituted,
  /// so remaining LoopCoeffs name barrier-free loops only. Valid only when
  /// Resolved.
  AffineExpr FlatFloat;
  /// Consecutive float words touched per access (1 for float, 2/4 for
  /// vector elements).
  int Lanes = 1;
  /// Per-subscript affine forms in declared-dimension units (empty for
  /// reinterpreted vecWidth>1 views). Sync iterators substituted.
  std::vector<AffineExpr> DimAffine;
  bool Resolved = false;
  /// Enclosing barrier-free loops (innermost last).
  std::vector<EnumLoop> Loops;
  std::vector<AccessGuard> Guards;
  /// True if some enclosing condition was not affine; the access is then
  /// treated as executing unconditionally (may-access over-approximation).
  bool UnknownGuard = false;
  /// Value signature of a staging store: set when the store's RHS is
  /// exactly a load of one global array with affine subscripts. Two
  /// same-word writers with equal source elements copy identical data —
  /// the redundant halo-load idiom block merge produces — and are not
  /// reported as a write-write race.
  bool HasSrc = false;
  std::string SrcArray;
  /// Flat element offset into SrcArray (sync iterators substituted).
  AffineExpr SrcAddr;
  SourceLocation Loc;
};

/// The phase partition of one kernel.
struct PhaseModel {
  std::vector<SharedAccess> Accesses;
  /// Total number of phases (phase ids are 0..NumPhases-1).
  int NumPhases = 1;
  /// False when the barrier structure could not be modeled (divergent
  /// barrier, unresolvable sync-loop trip count); Problems explains why.
  bool Analyzable = true;
  /// True when some loop was truncated to the configured cap.
  bool Sampled = false;
  std::vector<std::string> Problems;
};

/// Caps for symbolic unrolling / enumeration.
struct PhaseModelOptions {
  /// Max unrolled iterations of a loop containing a barrier.
  int SyncLoopCap = 256;
  /// Max enumerated values per barrier-free loop iterator.
  int FreeLoopValueCap = 18;
};

/// Builds the phase model of \p K under its current launch configuration.
PhaseModel buildPhaseModel(const KernelFunction &K,
                           const PhaseModelOptions &Opt = PhaseModelOptions());

/// Enumerates the first \p Cap values of loop \p F given concrete bindings
/// for enclosing sync-loop iterators. Handles the canonical Add loops and
/// the halving Div loops of the reduction kernels.
EnumLoop enumerateLoopValues(const ForStmt *F, const KernelFunction &K,
                             const std::map<std::string, long long> &Env,
                             int Cap);

/// Evaluates guard \p G for a concrete thread/loop assignment.
bool guardHolds(const AccessGuard &G, long long Tidx, long long Tidy,
                long long Bidx, long long Bidy,
                const std::map<std::string, long long> &LoopValues);

} // namespace gpuc

#endif // GPUC_ANALYSIS_SHAREDACCESS_H

//===-- analysis/Ranges.h - Symbolic value intervals ------------*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interval domain of the abstract-interpretation engine. An Interval is a
/// sound enclosure of an integer expression's values over every executing
/// thread, block and loop iteration; the Exact flag additionally promises
/// that both endpoints are *attained* by some execution. Exactness is what
/// separates a "possible" out-of-bounds report from a proven Violation,
/// so only the affine evaluation path — where endpoint attainment follows
/// from the independence of tid/bid/constant-bounds iterators — produces
/// it; generic interval arithmetic drops the flag except where attainment
/// trivially survives (point shifts, negation).
///
/// All arithmetic saturates to the unknown interval on 64-bit overflow.
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_ANALYSIS_RANGES_H
#define GPUC_ANALYSIS_RANGES_H

#include "ast/Affine.h"
#include "ast/Kernel.h"

#include <map>
#include <string>

namespace gpuc {

/// A (possibly unknown) closed integer interval [Lo, Hi].
struct Interval {
  bool Known = false;
  /// Both endpoints are attained by some execution. Cleared by any
  /// operation that cannot prove attainment.
  bool Exact = false;
  long long Lo = 0;
  long long Hi = 0;

  static Interval top() { return {}; }
  static Interval point(long long V) { return {true, true, V, V}; }
  static Interval make(long long Lo, long long Hi, bool Exact = false) {
    return {true, Exact, Lo, Hi};
  }

  bool isPoint() const { return Known && Lo == Hi; }
  bool contains(long long V) const { return Known && Lo <= V && V <= Hi; }
  /// "unknown", "[lo, hi]" (exact) or "~[lo, hi]" (over-approximate).
  std::string str() const;
  bool operator==(const Interval &O) const;
};

/// Convex hull. Exact only when the operands are equal exact intervals
/// (a hull endpoint contributed by one join arm need not be attained —
/// that arm's path may never execute).
Interval joinI(const Interval &A, const Interval &B);

/// Intersection; an empty intersection denotes an unreachable path and
/// collapses to an inexact point. Exact is kept only for the operand the
/// result equals.
Interval meetI(const Interval &A, const Interval &B);

Interval negI(const Interval &A);
Interval addI(const Interval &A, const Interval &B);
Interval subI(const Interval &A, const Interval &B);
Interval mulI(const Interval &A, const Interval &B);
/// C truncating division; unknown when B may be zero.
Interval divI(const Interval &A, const Interval &B);
/// C remainder (sign follows the dividend); unknown when B may be zero.
Interval remI(const Interval &A, const Interval &B);

/// Value intervals for the symbolic (loop-iterator) names appearing in
/// canonical affine forms. Missing names are unknown.
struct RangeEnv {
  std::map<std::string, Interval> Syms;
  Interval lookup(const std::string &Name) const;
};

/// Evaluates an affine form over the launch domain (tidx in
/// [0, BlockDimX-1], bidx in [0, GridDimX-1], ...) and \p Env's iterator
/// intervals. The sum of the per-term extremes is attained when every term
/// is, because tid/bid axes and constant-bounds iterators vary
/// independently — the engine only marks an iterator interval Exact under
/// that discipline, which is what lets linearity turn interval endpoints
/// into witness executions.
Interval rangeOfAffine(const AffineExpr &A, const LaunchConfig &L,
                       const RangeEnv &Env);

} // namespace gpuc

#endif // GPUC_ANALYSIS_RANGES_H

//===-- analysis/RaceDetector.h - Static shared-memory races ----*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static shared-memory race detection: within each barrier-delimited
/// phase (analysis/SharedAccess.h), the per-thread symbolic address sets of
/// every pair of accesses to the same __shared__ array are intersected; a
/// write-write or write-read overlap between two distinct threads of a
/// block is a race, reported with a concrete witness (element, thread pair,
/// the two access expressions and their phase).
///
/// The compiler's own coalescing conversion, thread-block merge and
/// prefetching all stage data through barrier-guarded __shared__ tiles
/// (Sections 3.3/3.5/3.6); this detector proves those rewrites
/// barrier-correct and flags a misplaced or missing __syncthreads() at the
/// stage that introduced it.
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_ANALYSIS_RACEDETECTOR_H
#define GPUC_ANALYSIS_RACEDETECTOR_H

#include "analysis/SharedAccess.h"

#include <string>
#include <vector>

namespace gpuc {

/// One detected race with a concrete witness.
struct RaceFinding {
  std::string Array;
  /// True: write-write; false: write-read.
  bool WriteWrite = false;
  int Phase = 0;
  /// Conflicting float-word offset within the array.
  long long Word = 0;
  /// Witness thread pair (in-block coordinates).
  int T1x = 0, T1y = 0, T2x = 0, T2y = 0;
  const ArrayRef *Ref1 = nullptr;
  const ArrayRef *Ref2 = nullptr;
  SourceLocation Loc1, Loc2;

  /// Human-readable one-line description.
  std::string str() const;
};

/// Result of a race analysis.
struct RaceReport {
  std::vector<RaceFinding> Findings;
  /// False when the phase structure could not be modeled; Notes explains.
  bool Analyzable = true;
  /// True when loop enumeration was capped (verdict covers the sampled
  /// prefix; affine access patterns are periodic, so this is the same
  /// trade Section 3.2 makes).
  bool Sampled = false;
  /// Caveats: unanalyzable constructs, unresolved subscripts.
  std::vector<std::string> Notes;

  bool clean() const { return Findings.empty() && Analyzable; }
};

/// Limits for the symbolic enumeration.
struct RaceDetectOptions {
  PhaseModelOptions Phases;
  /// Max free-loop value combinations enumerated per access.
  long long MaxCombos = 4096;
  /// Max findings reported (further races are counted but dropped).
  int MaxFindings = 16;
};

/// Runs the detector on \p K under its current launch configuration.
RaceReport detectSharedRaces(const KernelFunction &K,
                             const RaceDetectOptions &Opt =
                                 RaceDetectOptions());

} // namespace gpuc

#endif // GPUC_ANALYSIS_RACEDETECTOR_H

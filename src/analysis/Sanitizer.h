//===-- analysis/Sanitizer.h - Static kernel sanitizer ----------*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Facade over the race detector and the lints: one call checks a kernel
/// and routes the results into a DiagnosticsEngine (races become errors
/// with witness notes, lints become warnings), and attachStageSanitizer
/// installs the whole thing as a core/Compiler stage hook so every
/// intermediate kernel of every explored variant is checked — a misplaced
/// barrier is blamed on the stage that introduced it.
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_ANALYSIS_SANITIZER_H
#define GPUC_ANALYSIS_SANITIZER_H

#include "analysis/Lint.h"
#include "analysis/RaceDetector.h"
#include "core/Compiler.h"

namespace gpuc {

/// What the sanitizer runs.
struct SanitizeOptions {
  /// Static shared-memory race detection (errors).
  bool Races = true;
  /// Kernel lints (warnings).
  bool Lint = true;
  /// Report unanalyzable race structure as a warning (default) instead of
  /// staying silent; --Werror then makes it fatal.
  bool WarnUnanalyzable = true;
  RaceDetectOptions RaceOpts;
  LintOptions LintOpts;
};

/// Cumulative results over one or more sanitizeKernel calls.
struct SanitizeSummary {
  int KernelsChecked = 0;
  int RaceErrors = 0;
  int LintWarnings = 0;
  int Unanalyzable = 0;
};

/// Race-checks and lints \p K, reporting into \p Diags. \p Context names
/// the pipeline stage (or build step) in every message; \p Final enables
/// the lints that are only meaningful on a fully compiled kernel (the
/// coalescing lint — naive inputs are legitimately non-coalesced).
/// \returns the race report for programmatic use.
RaceReport sanitizeKernel(KernelFunction &K, DiagnosticsEngine &Diags,
                          const SanitizeOptions &Opt,
                          const std::string &Context = "",
                          bool Final = true,
                          SanitizeSummary *Summary = nullptr);

/// Installs the sanitizer as \p CO's per-stage hook. \p Diags, \p Opt and
/// \p Summary (each optional for the latter two) must outlive the
/// compilation. Races found at any stage are errors attributed to that
/// stage; the coalescing lint only runs on final kernels.
void attachStageSanitizer(CompileOptions &CO, DiagnosticsEngine &Diags,
                          const SanitizeOptions &Opt = SanitizeOptions(),
                          SanitizeSummary *Summary = nullptr);

} // namespace gpuc

#endif // GPUC_ANALYSIS_SANITIZER_H

//===-- analysis/Lint.cpp - Kernel lint passes ----------------------------===//

#include "analysis/Lint.h"

#include "analysis/Dataflow.h"
#include "ast/Printer.h"
#include "core/Accesses.h"
#include "core/Coalescing.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <map>
#include <set>

using namespace gpuc;

namespace {

class Linter {
public:
  Linter(KernelFunction &K, DiagnosticsEngine &Diags, const LintOptions &Opt)
      : K(K), Diags(Diags), Opt(Opt) {}

  int run() {
    if (Opt.OutOfBounds || Opt.Coalescing)
      Globals = collectGlobalAccesses(K);
    if (Opt.OutOfBounds && Opt.Strict) {
      // Verdict mode: the dataflow engine subsumes both bounds lints and
      // sees through guards instead of skipping them.
      Facts = runDataflow(K);
      lintStrictBounds();
    } else if (Opt.OutOfBounds) {
      collectGuarded(K.body(), /*UnderIf=*/false);
      lintGlobalBounds();
    }
    if ((Opt.OutOfBounds && !Opt.Strict) || Opt.BankConflicts)
      Model = buildPhaseModel(K, Opt.Phases);
    if (Opt.OutOfBounds && !Opt.Strict)
      lintSharedBounds();
    if (Opt.BankConflicts)
      lintBankConflicts();
    if (Opt.Coalescing)
      lintCoalescing();
    return NumWarnings;
  }

private:
  void warn(SourceLocation Loc, std::string Msg) {
    if (!Opt.Context.empty())
      Msg = "[" + Opt.Context + "] " + Msg;
    Diags.warning(Loc, std::move(Msg));
    ++NumWarnings;
  }

  /// Statements nested under some if: their accesses are guard-restricted,
  /// so interval analysis over the full thread/loop space would produce
  /// false positives (e.g. the `if (tidx < s)` reduction idiom).
  void collectGuarded(const Stmt *S, bool UnderIf) {
    if (UnderIf)
      Guarded.insert(S);
    switch (S->kind()) {
    case StmtKind::Compound:
      for (const Stmt *Child : cast<CompoundStmt>(S)->body())
        collectGuarded(Child, UnderIf);
      return;
    case StmtKind::If: {
      const auto *I = cast<IfStmt>(S);
      collectGuarded(I->thenBody(), /*UnderIf=*/true);
      if (I->elseBody())
        collectGuarded(I->elseBody(), /*UnderIf=*/true);
      return;
    }
    case StmtKind::For:
      collectGuarded(cast<ForStmt>(S)->body(), UnderIf);
      return;
    case StmtKind::While:
      // A while body executes only when its (data-dependent) condition
      // holds, so treat it like a guarded region.
      collectGuarded(cast<WhileStmt>(S)->body(), /*UnderIf=*/true);
      return;
    default:
      return;
    }
  }

  /// Extends [Lo, Hi] by Coeff * [MinV, MaxV].
  static void addTermRange(long long Coeff, long long MinV, long long MaxV,
                           long long &Lo, long long &Hi) {
    if (Coeff >= 0) {
      Lo += Coeff * MinV;
      Hi += Coeff * MaxV;
    } else {
      Lo += Coeff * MaxV;
      Hi += Coeff * MinV;
    }
  }

  void lintGlobalBounds() {
    const LaunchConfig &L = K.launch();
    std::set<const ArrayRef *> Reported;
    for (const AccessInfo &A : Globals) {
      if (!A.Resolved || !A.Param || !Reported.insert(A.Ref).second)
        continue;
      if (A.Owner && Guarded.count(A.Owner))
        continue;
      long long Lo = A.Addr.Const, Hi = A.Addr.Const;
      addTermRange(A.Addr.CTidx, 0, L.BlockDimX - 1, Lo, Hi);
      addTermRange(A.Addr.CTidy, 0, L.BlockDimY - 1, Lo, Hi);
      addTermRange(A.Addr.CBidx, 0, L.GridDimX - 1, Lo, Hi);
      addTermRange(A.Addr.CBidy, 0, L.GridDimY - 1, Lo, Hi);
      bool Known = true;
      for (const auto &[Name, C] : A.Addr.LoopCoeffs) {
        if (C == 0)
          continue;
        const LoopInfo *LI = A.loopNamed(Name);
        if (!LI || !LI->Resolved || LI->trip() <= 0) {
          Known = false;
          break;
        }
        long long Last = LI->Init + (LI->trip() - 1) * LI->Step;
        addTermRange(C, LI->Init, Last, Lo, Hi);
      }
      if (!Known)
        continue;
      long long Size = A.Param->sizeInBytes();
      if (Lo < 0 || Hi + A.ElemBytes > Size)
        warn(A.Ref->loc(),
             strFormat("%s of '%s' may be out of bounds: byte address range "
                       "[%lld, %lld] exceeds the declared %lld bytes",
                       A.IsStore ? "store" : "load", printExpr(A.Ref).c_str(),
                       Lo, Hi + A.ElemBytes - 1, Size));
    }
  }

  void lintStrictBounds() {
    std::set<const ArrayRef *> Reported;
    for (const AccessFact &A : Facts.Accesses) {
      if (A.Bounds == Verdict::Proven || !Reported.insert(A.Ref).second)
        continue;
      const char *Kind = A.IsStore ? "store" : "load";
      const char *Space = A.IsShared ? "__shared__ " : "";
      if (A.Bounds == Verdict::Violation)
        warn(A.Loc,
             strFormat("%s of %s'%s' is proven out of bounds: word range %s "
                       "with %d lane(s) exceeds the declared %lld words",
                       Kind, Space, printExpr(A.Ref).c_str(),
                       A.Words.str().c_str(), A.Lanes, A.TotalWords));
      else
        warn(A.Loc,
             strFormat("%s of %s'%s' is possibly out of bounds (in-bounds "
                       "not proven): word range %s with %d lane(s) against "
                       "%lld declared words",
                       Kind, Space, printExpr(A.Ref).c_str(),
                       A.Words.str().c_str(), A.Lanes, A.TotalWords));
    }
  }

  void lintSharedBounds() {
    const LaunchConfig &L = K.launch();
    std::set<const ArrayRef *> Reported;
    for (const SharedAccess &A : Model.Accesses) {
      if (!A.Resolved || !A.Decl || !Reported.insert(A.Ref).second)
        continue;
      // Guards restrict the executing threads; skip rather than warn on a
      // thread the guard masks off.
      if (!A.Guards.empty() || A.UnknownGuard)
        continue;
      long long Lo = A.FlatFloat.Const, Hi = A.FlatFloat.Const;
      addTermRange(A.FlatFloat.CTidx, 0, L.BlockDimX - 1, Lo, Hi);
      addTermRange(A.FlatFloat.CTidy, 0, L.BlockDimY - 1, Lo, Hi);
      addTermRange(A.FlatFloat.CBidx, 0, L.GridDimX - 1, Lo, Hi);
      addTermRange(A.FlatFloat.CBidy, 0, L.GridDimY - 1, Lo, Hi);
      bool Known = true;
      for (const auto &[Name, C] : A.FlatFloat.LoopCoeffs) {
        if (C == 0)
          continue;
        const EnumLoop *EL = nullptr;
        for (const EnumLoop &Cand : A.Loops)
          if (Cand.Name == Name)
            EL = &Cand;
        if (!EL || !EL->Resolved) {
          Known = false;
          break;
        }
        addTermRange(C, EL->Min, EL->Max, Lo, Hi);
      }
      if (!Known)
        continue;
      long long Words =
          A.Decl->sharedElemCount() * A.Decl->declType().sizeInBytes() / 4;
      if (Lo < 0 || Hi + A.Lanes > Words)
        warn(A.Ref->loc(),
             strFormat("%s of __shared__ '%s' may be out of bounds: word "
                       "range [%lld, %lld] exceeds the declared %lld words",
                       A.IsWrite ? "store" : "load",
                       printExpr(A.Ref).c_str(), Lo, Hi + A.Lanes - 1,
                       Words));
    }
  }

  void lintBankConflicts() {
    const LaunchConfig &L = K.launch();
    long long HalfWarp = std::min<long long>(16, L.threadsPerBlock());
    if (HalfWarp < 2)
      return;
    std::set<const ArrayRef *> Reported;
    for (const SharedAccess &A : Model.Accesses) {
      if (!A.Resolved || !A.Decl || !Reported.insert(A.Ref).second)
        continue;
      // A guard masks off lanes, so the all-lanes degree is only an upper
      // bound; strict mode still reports it, qualified as "possible".
      const bool GuardMasked = !A.Guards.empty() || A.UnknownGuard;
      if (GuardMasked && !Opt.Strict)
        continue;
      // First iteration of every enclosing loop; the affine stride makes
      // later iterations shift all lanes alike, so the conflict degree is
      // the same (Section 3.2's periodicity argument).
      std::map<std::string, long long> Values;
      bool Known = true;
      for (const auto &[Name, C] : A.FlatFloat.LoopCoeffs) {
        if (C == 0)
          continue;
        const EnumLoop *EL = nullptr;
        for (const EnumLoop &Cand : A.Loops)
          if (Cand.Name == Name)
            EL = &Cand;
        if (!EL || !EL->Resolved || EL->Values.empty()) {
          Known = false;
          break;
        }
        Values[Name] = EL->Values.front();
      }
      if (!Known)
        continue;
      // Lanes of the first half warp, in flat thread order. Same word from
      // two lanes is a broadcast, not a conflict.
      std::map<long long, std::set<long long>> BankWords;
      for (long long Flat = 0; Flat < HalfWarp; ++Flat) {
        long long Tx = Flat % L.BlockDimX;
        long long Ty = Flat / L.BlockDimX;
        long long Word = A.FlatFloat.evaluate(Tx, Ty, 0, 0, Values);
        BankWords[((Word % Opt.SharedBanks) + Opt.SharedBanks) %
                  Opt.SharedBanks]
            .insert(Word);
      }
      size_t Degree = 1;
      for (const auto &[Bank, WordsInBank] : BankWords)
        Degree = std::max(Degree, WordsInBank.size());
      if (Degree > 1)
        warn(A.Ref->loc(),
             strFormat("%s%zu-way shared-memory bank conflict on %s "
                       "(half-warp lanes hit %zu distinct words in one bank "
                       "of %d); consider padding the innermost dimension",
                       !Opt.Strict          ? ""
                       : GuardMasked        ? "possible "
                                            : "proven ",
                       Degree, printExpr(A.Ref).c_str(), Degree,
                       Opt.SharedBanks));
    }
  }

  void lintCoalescing() {
    std::set<const ArrayRef *> Reported;
    for (const AccessInfo &A : Globals) {
      if (!A.Ref || !Reported.insert(A.Ref).second)
        continue;
      CoalesceInfo CI = checkCoalescing(A, K);
      if (CI.Coalesced)
        continue;
      if (CI.Failure == CoalesceFailure::Unresolved) {
        // Default mode stays silent on unresolved addresses; strict mode's
        // contract is "prove it or hear about it".
        if (Opt.Strict)
          warn(A.Ref->loc(),
               strFormat("global %s %s is possibly non-coalesced (address "
                         "not statically resolvable)",
                         A.IsStore ? "store" : "load",
                         printExpr(A.Ref).c_str()));
        continue;
      }
      warn(A.Ref->loc(),
           strFormat("global %s %s is %snot coalesced (%s, thread stride "
                     "%lld bytes)",
                     A.IsStore ? "store" : "load", printExpr(A.Ref).c_str(),
                     Opt.Strict ? "provenly " : "",
                     coalesceFailureName(CI.Failure), CI.ThreadStrideBytes));
    }
  }

  KernelFunction &K;
  DiagnosticsEngine &Diags;
  const LintOptions &Opt;
  std::vector<AccessInfo> Globals;
  PhaseModel Model;
  DataflowResult Facts;
  std::set<const Stmt *> Guarded;
  int NumWarnings = 0;
};

} // namespace

int gpuc::lintKernel(KernelFunction &K, DiagnosticsEngine &Diags,
                     const LintOptions &Opt) {
  return Linter(K, Diags, Opt).run();
}

//===-- analysis/Ranges.cpp - Symbolic value intervals --------------------===//

#include "analysis/Ranges.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace gpuc;

namespace {

/// 64-bit checked helpers; failure poisons the whole interval to top.
bool checkedAdd(long long A, long long B, long long &Out) {
  return !__builtin_add_overflow(A, B, &Out);
}

bool checkedMul(long long A, long long B, long long &Out) {
  return !__builtin_mul_overflow(A, B, &Out);
}

} // namespace

std::string Interval::str() const {
  if (!Known)
    return "unknown";
  return strFormat("%s[%lld, %lld]", Exact ? "" : "~", Lo, Hi);
}

bool Interval::operator==(const Interval &O) const {
  if (Known != O.Known)
    return false;
  if (!Known)
    return true;
  return Exact == O.Exact && Lo == O.Lo && Hi == O.Hi;
}

Interval gpuc::joinI(const Interval &A, const Interval &B) {
  if (!A.Known || !B.Known)
    return Interval::top();
  Interval R = Interval::make(std::min(A.Lo, B.Lo), std::max(A.Hi, B.Hi));
  R.Exact = A.Exact && B.Exact && A.Lo == B.Lo && A.Hi == B.Hi;
  return R;
}

Interval gpuc::meetI(const Interval &A, const Interval &B) {
  if (!A.Known)
    return B;
  if (!B.Known)
    return A;
  Interval R = Interval::make(std::max(A.Lo, B.Lo), std::min(A.Hi, B.Hi));
  if (R.Hi < R.Lo) {
    // Contradictory facts: the path is unreachable, any enclosure holds.
    R.Lo = R.Hi = std::max(A.Lo, B.Lo);
    return R;
  }
  R.Exact = (A.Exact && R.Lo == A.Lo && R.Hi == A.Hi) ||
            (B.Exact && R.Lo == B.Lo && R.Hi == B.Hi);
  return R;
}

Interval gpuc::negI(const Interval &A) {
  if (!A.Known)
    return Interval::top();
  long long Lo, Hi;
  if (!checkedMul(A.Hi, -1, Lo) || !checkedMul(A.Lo, -1, Hi))
    return Interval::top();
  Interval R = Interval::make(Lo, Hi);
  R.Exact = A.Exact;
  return R;
}

Interval gpuc::addI(const Interval &A, const Interval &B) {
  if (!A.Known || !B.Known)
    return Interval::top();
  long long Lo, Hi;
  if (!checkedAdd(A.Lo, B.Lo, Lo) || !checkedAdd(A.Hi, B.Hi, Hi))
    return Interval::top();
  Interval R = Interval::make(Lo, Hi);
  // A point shift relocates the attained set wholesale.
  R.Exact = A.Exact && B.Exact && (A.isPoint() || B.isPoint());
  return R;
}

Interval gpuc::subI(const Interval &A, const Interval &B) {
  return addI(A, negI(B));
}

Interval gpuc::mulI(const Interval &A, const Interval &B) {
  if (!A.Known || !B.Known)
    return Interval::top();
  long long C[4];
  if (!checkedMul(A.Lo, B.Lo, C[0]) || !checkedMul(A.Lo, B.Hi, C[1]) ||
      !checkedMul(A.Hi, B.Lo, C[2]) || !checkedMul(A.Hi, B.Hi, C[3]))
    return Interval::top();
  Interval R = Interval::make(*std::min_element(C, C + 4),
                              *std::max_element(C, C + 4));
  // Scaling by an attained constant preserves endpoint attainment.
  R.Exact = A.Exact && B.Exact && (A.isPoint() || B.isPoint());
  return R;
}

Interval gpuc::divI(const Interval &A, const Interval &B) {
  if (!A.Known || !B.Known || B.contains(0))
    return Interval::top();
  // Truncating division is monotone in the dividend and piecewise
  // monotone in the (sign-pure) divisor, so the extremes sit on corners.
  long long C[4] = {A.Lo / B.Lo, A.Lo / B.Hi, A.Hi / B.Lo, A.Hi / B.Hi};
  Interval R = Interval::make(*std::min_element(C, C + 4),
                              *std::max_element(C, C + 4));
  R.Exact = A.isPoint() && B.isPoint();
  return R;
}

Interval gpuc::remI(const Interval &A, const Interval &B) {
  if (!A.Known || !B.Known || B.contains(0))
    return Interval::top();
  if (A.isPoint() && B.isPoint())
    return Interval::point(A.Lo % B.Lo);
  long long M = std::max(std::llabs(B.Lo), std::llabs(B.Hi));
  // C semantics: the result's sign follows the dividend.
  long long Lo = A.Lo >= 0 ? 0 : -(M - 1);
  long long Hi = A.Hi <= 0 ? 0 : M - 1;
  Interval R = Interval::make(Lo, Hi);
  // a % b == a whenever 0 <= a < min(|b|): the identity pass-through.
  long long MinAbsB = std::min(std::llabs(B.Lo), std::llabs(B.Hi));
  if (B.Lo > 0 || B.Hi < 0) {
    if (A.Lo >= 0 && A.Hi < MinAbsB)
      return A;
  }
  return R;
}

Interval RangeEnv::lookup(const std::string &Name) const {
  auto It = Syms.find(Name);
  return It == Syms.end() ? Interval::top() : It->second;
}

Interval gpuc::rangeOfAffine(const AffineExpr &A, const LaunchConfig &L,
                             const RangeEnv &Env) {
  // Accumulate per-term extremes directly: unlike generic addI, the sum of
  // attained extremes is attained here because the terms' variables are
  // independent (see the header note).
  long long Lo = A.Const, Hi = A.Const;
  bool Exact = true;
  auto Term = [&](long long C, const Interval &V) -> bool {
    if (C == 0)
      return true;
    if (!V.Known)
      return false;
    long long TLo, THi;
    if (!checkedMul(C, C > 0 ? V.Lo : V.Hi, TLo) ||
        !checkedMul(C, C > 0 ? V.Hi : V.Lo, THi))
      return false;
    if (!checkedAdd(Lo, TLo, Lo) || !checkedAdd(Hi, THi, Hi))
      return false;
    Exact = Exact && V.Exact;
    return true;
  };
  if (!Term(A.CTidx, Interval::make(0, L.BlockDimX - 1, true)) ||
      !Term(A.CTidy, Interval::make(0, L.BlockDimY - 1, true)) ||
      !Term(A.CBidx, Interval::make(0, L.GridDimX - 1, true)) ||
      !Term(A.CBidy, Interval::make(0, L.GridDimY - 1, true)))
    return Interval::top();
  for (const auto &[Name, C] : A.LoopCoeffs)
    if (!Term(C, Env.lookup(Name)))
      return Interval::top();
  return Interval::make(Lo, Hi, Exact);
}

//===-- analysis/Lint.h - Kernel lint passes --------------------*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Warning-level kernel lints built on the affine access model:
///
///  * out-of-bounds: per-subscript value ranges (over the launch
///    configuration and resolvable loop bounds) versus declared extents,
///    for global parameters and __shared__ arrays;
///  * shared-memory bank conflicts: half-warp lane addresses folded into
///    banks, with the broadcast exception (Section 2's hardware rules);
///  * non-coalesced global accesses surviving compilation, with the
///    Section 3.2 failure class as the reason.
///
/// All lints report through DiagnosticsEngine::warning, so gpucc --Werror
/// promotes them to hard errors.
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_ANALYSIS_LINT_H
#define GPUC_ANALYSIS_LINT_H

#include "analysis/SharedAccess.h"
#include "support/Diagnostics.h"

namespace gpuc {

/// Which lints to run.
struct LintOptions {
  bool OutOfBounds = true;
  bool BankConflicts = true;
  bool Coalescing = true;
  /// Verdict mode (gpucc --lint=strict): bounds lints come from the
  /// abstract-interpretation engine (analysis/Dataflow.h) and every
  /// finding carries a proven/possible verdict. Guarded accesses are no
  /// longer silently skipped — a guard the engine can prove sufficient
  /// (the clamped-halo idiom) stays quiet, an unprovable one reports as
  /// "possible", and an access proven to fault reports as "proven".
  bool Strict = false;
  /// Number of shared-memory banks (16 on the paper's hardware).
  int SharedBanks = 16;
  /// Prefix for messages, e.g. the pipeline stage name.
  std::string Context;
  PhaseModelOptions Phases;
};

/// Runs the enabled lints over \p K, reporting warnings to \p Diags.
/// \returns the number of warnings produced.
int lintKernel(KernelFunction &K, DiagnosticsEngine &Diags,
               const LintOptions &Opt = LintOptions());

} // namespace gpuc

#endif // GPUC_ANALYSIS_LINT_H

//===-- analysis/Dataflow.cpp - Abstract-interpretation engine ------------===//

#include "analysis/Dataflow.h"

#include "ast/Walk.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <climits>
#include <set>

using namespace gpuc;

const char *gpuc::verdictName(Verdict V) {
  switch (V) {
  case Verdict::Proven:
    return "proven";
  case Verdict::Possible:
    return "possible";
  case Verdict::Violation:
    return "violation";
  }
  return "?";
}

namespace {

void normalizeAffine(AffineExpr &A) {
  for (auto It = A.LoopCoeffs.begin(); It != A.LoopCoeffs.end();)
    It = It->second == 0 ? A.LoopCoeffs.erase(It) : std::next(It);
}

bool affineEq(const AffineExpr &A, const AffineExpr &B) {
  return A.Const == B.Const && A.CTidx == B.CTidx && A.CTidy == B.CTidy &&
         A.CBidx == B.CBidx && A.CBidy == B.CBidy &&
         A.LoopCoeffs == B.LoopCoeffs;
}

long long floorDiv(long long N, long long D) {
  long long Q = N / D, R = N % D;
  return R != 0 && ((R < 0) != (D < 0)) ? Q - 1 : Q;
}

long long ceilDiv(long long N, long long D) { return -floorDiv(-N, D); }

/// Does \p V satisfy `V Cmp 0`?
bool satisfiesCmp(long long V, BinOp Cmp) {
  switch (Cmp) {
  case BinOp::LT:
    return V < 0;
  case BinOp::LE:
    return V <= 0;
  case BinOp::GT:
    return V > 0;
  case BinOp::GE:
    return V >= 0;
  case BinOp::EQ:
    return V == 0;
  case BinOp::NE:
    return V != 0;
  default:
    return false;
  }
}

bool isCmpOp(BinOp Op) {
  switch (Op) {
  case BinOp::LT:
  case BinOp::LE:
  case BinOp::GT:
  case BinOp::GE:
  case BinOp::EQ:
  case BinOp::NE:
    return true;
  default:
    return false;
  }
}

/// `!(x Cmp y)` as a comparison.
BinOp negateCmp(BinOp Op) {
  switch (Op) {
  case BinOp::LT:
    return BinOp::GE;
  case BinOp::LE:
    return BinOp::GT;
  case BinOp::GT:
    return BinOp::LE;
  case BinOp::GE:
    return BinOp::LT;
  case BinOp::EQ:
    return BinOp::NE;
  case BinOp::NE:
    return BinOp::EQ;
  default:
    return Op;
  }
}

/// `x Cmp y` rewritten as `y Cmp' x`.
BinOp swapCmp(BinOp Op) {
  switch (Op) {
  case BinOp::LT:
    return BinOp::GT;
  case BinOp::LE:
    return BinOp::GE;
  case BinOp::GT:
    return BinOp::LT;
  case BinOp::GE:
    return BinOp::LE;
  default:
    return Op; // EQ/NE are symmetric
  }
}

/// A path fact `Delta Cmp 0` over a canonical affine form, pushed when
/// entering a refined branch and used to clip collinear access forms.
struct Constraint {
  AffineExpr Delta;
  BinOp Cmp;
};

/// Classification of a branch condition.
struct CondClass {
  enum class Truth { True, False, Mixed };
  Truth T = Truth::Mixed;
  DivFact Div;
  /// The affine straddle test proved two threads of some executing block
  /// (resp. two blocks) evaluate the condition differently.
  bool ThreadSplit = false;
  bool BlockSplit = false;
};

/// Control context carried down the walk; saved/restored around nested
/// constructs.
struct CtxState {
  /// Join of enclosing if-condition / loop-trip divergence.
  DivFact IfDiv, LoopDiv;
  /// A proven divergence whose deadlock is unconditional from here: the
  /// matching barrier verdict is Violation, not just Possible. Cleared on
  /// entering any construct whose execution is not guaranteed.
  bool IfThreadArmed = false, IfBlockArmed = false;
  bool LoopThreadArmed = false, LoopBlockArmed = false;
  /// Every thread that launches reaches this point.
  bool ExecGuaranteed = true;
  /// Enclosing guards of any kind (for AccessFact::Guarded).
  int CondDepth = 0;

  void enterUncertain() {
    ++CondDepth;
    ExecGuaranteed = false;
    IfThreadArmed = IfBlockArmed = false;
    LoopThreadArmed = LoopBlockArmed = false;
  }
};

class Engine {
public:
  explicit Engine(const KernelFunction &K) : K(K), L(K.launch()) {
    for (const DeclStmt *D : K.sharedDecls())
      Shared[D->name()] = D;
  }

  DataflowResult run() {
    State S;
    analyzeCompound(K.body(), S);
    Res.ExitVars = std::move(S.Vars);
    return std::move(Res);
  }

private:
  struct State {
    std::map<std::string, VarFact> Vars;
  };

  //===------------------------------------------------------------------===//
  // Environments and expression evaluation
  //===------------------------------------------------------------------===//

  DivEnv divEnv(const State &S) const {
    DivEnv E;
    for (const auto &[Name, F] : S.Vars)
      E.Vars[Name] = F.Div;
    return E;
  }

  RangeEnv rangeEnv(const State &S) const {
    RangeEnv E;
    for (const auto &[Name, F] : S.Vars)
      E.Syms[Name] = F.Range;
    return E;
  }

  /// Canonical affine form of \p E: builtins plus *active* loop iterators;
  /// other int locals are spliced in through their own stored forms.
  bool canonicalForm(const Expr *E, const State &S, AffineExpr &Out) const {
    AffineExpr Raw;
    if (!buildAffine(E, K, Raw))
      return false;
    Out = Raw;
    Out.LoopCoeffs.clear();
    for (const auto &[Name, C] : Raw.LoopCoeffs) {
      if (ActiveIters.count(Name)) {
        Out.LoopCoeffs[Name] += C;
        continue;
      }
      auto It = S.Vars.find(Name);
      if (It == S.Vars.end() || !It->second.HasForm)
        return false;
      AffineExpr T = It->second.Form;
      T *= C;
      Out += T;
    }
    normalizeAffine(Out);
    return true;
  }

  /// Structural interval of an int/bool expression; carries branch
  /// refinements through the variable environment.
  Interval intervalOf(const Expr *E, const State &S) const {
    switch (E->kind()) {
    case ExprKind::IntLit:
      return Interval::point(cast<IntLit>(E)->value());
    case ExprKind::BuiltinRef:
      switch (cast<BuiltinRef>(E)->id()) {
      case BuiltinId::Tidx:
        return Interval::make(0, L.BlockDimX - 1, true);
      case BuiltinId::Tidy:
        return Interval::make(0, L.BlockDimY - 1, true);
      case BuiltinId::Bidx:
        return Interval::make(0, L.GridDimX - 1, true);
      case BuiltinId::Bidy:
        return Interval::make(0, L.GridDimY - 1, true);
      case BuiltinId::Idx:
        return Interval::make(0, L.GridDimX * L.BlockDimX - 1, true);
      case BuiltinId::Idy:
        return Interval::make(0, L.GridDimY * L.BlockDimY - 1, true);
      case BuiltinId::BlockDimX:
        return Interval::point(L.BlockDimX);
      case BuiltinId::BlockDimY:
        return Interval::point(L.BlockDimY);
      case BuiltinId::GridDimX:
        return Interval::point(L.GridDimX);
      case BuiltinId::GridDimY:
        return Interval::point(L.GridDimY);
      }
      return Interval::top();
    case ExprKind::VarRef: {
      const auto *V = cast<VarRef>(E);
      if (const ParamDecl *P = K.findParam(V->name())) {
        if (P->IsArray)
          return Interval::top();
        auto It = K.scalarBindings().find(V->name());
        return It == K.scalarBindings().end() ? Interval::top()
                                              : Interval::point(It->second);
      }
      auto It = S.Vars.find(V->name());
      return It == S.Vars.end() ? Interval::top() : It->second.Range;
    }
    case ExprKind::Binary: {
      const auto *B = cast<Binary>(E);
      switch (B->op()) {
      case BinOp::Add:
        return addI(intervalOf(B->lhs(), S), intervalOf(B->rhs(), S));
      case BinOp::Sub:
        return subI(intervalOf(B->lhs(), S), intervalOf(B->rhs(), S));
      case BinOp::Mul:
        return mulI(intervalOf(B->lhs(), S), intervalOf(B->rhs(), S));
      case BinOp::Div:
        return divI(intervalOf(B->lhs(), S), intervalOf(B->rhs(), S));
      case BinOp::Rem:
        return remI(intervalOf(B->lhs(), S), intervalOf(B->rhs(), S));
      default:
        return Interval::make(0, 1); // comparisons, &&, ||
      }
    }
    case ExprKind::Unary:
      if (cast<Unary>(E)->op() == UnOp::Neg)
        return negI(intervalOf(cast<Unary>(E)->sub(), S));
      return Interval::make(0, 1);
    default:
      return Interval::top(); // FloatLit / ArrayRef / Call / Member
    }
  }

  /// Clips the range of the affine form \p F by every active path
  /// constraint whose variable part is collinear with \p F's: if
  /// varpart(F) == (P/Q)*varpart(Delta) then F = (P/Q)*Delta + const, and
  /// the constraint's one-sided bound on Delta bounds F.
  Interval clipByGuards(const AffineExpr &F, Interval I,
                        const RangeEnv &Env) const {
    for (const Constraint &G : Guards) {
      long long P = 0, Q = 0;
      bool Collinear = true;
      auto Pair = [&](long long FC, long long DC) {
        if (!Collinear)
          return;
        if (DC == 0) {
          if (FC != 0)
            Collinear = false;
          return;
        }
        if (Q == 0) {
          P = FC;
          Q = DC;
          return;
        }
        if (static_cast<__int128>(FC) * Q != static_cast<__int128>(DC) * P)
          Collinear = false;
      };
      Pair(F.CTidx, G.Delta.CTidx);
      Pair(F.CTidy, G.Delta.CTidy);
      Pair(F.CBidx, G.Delta.CBidx);
      Pair(F.CBidy, G.Delta.CBidy);
      std::set<std::string> Names;
      for (const auto &[N, C] : F.LoopCoeffs)
        Names.insert(N);
      for (const auto &[N, C] : G.Delta.LoopCoeffs)
        Names.insert(N);
      for (const std::string &N : Names) {
        auto FI = F.LoopCoeffs.find(N);
        auto DI = G.Delta.LoopCoeffs.find(N);
        Pair(FI == F.LoopCoeffs.end() ? 0 : FI->second,
             DI == G.Delta.LoopCoeffs.end() ? 0 : DI->second);
      }
      if (!Collinear || Q == 0 || P == 0)
        continue;
      if (Q < 0) {
        P = -P;
        Q = -Q;
      }
      Interval DR = rangeOfAffine(G.Delta, L, Env);
      if (!DR.Known)
        continue;
      long long VLo = DR.Lo, VHi = DR.Hi;
      switch (G.Cmp) {
      case BinOp::LT:
        VHi = std::min(VHi, -1LL);
        break;
      case BinOp::LE:
        VHi = std::min(VHi, 0LL);
        break;
      case BinOp::GT:
        VLo = std::max(VLo, 1LL);
        break;
      case BinOp::GE:
        VLo = std::max(VLo, 0LL);
        break;
      case BinOp::EQ:
        VLo = std::max(VLo, 0LL);
        VHi = std::min(VHi, 0LL);
        break;
      default:
        continue;
      }
      if (VLo > VHi)
        continue; // contradictory: path unreachable, nothing to clip
      // Q*F = P*Delta + (Q*F.Const - P*Delta.Const).
      __int128 RR = static_cast<__int128>(Q) * F.Const -
                    static_cast<__int128>(P) * G.Delta.Const;
      __int128 QLo = (P > 0 ? static_cast<__int128>(P) * VLo
                            : static_cast<__int128>(P) * VHi) +
                     RR;
      __int128 QHi = (P > 0 ? static_cast<__int128>(P) * VHi
                            : static_cast<__int128>(P) * VLo) +
                     RR;
      constexpr __int128 Cap = static_cast<__int128>(LLONG_MAX) / 2;
      if (QLo < -Cap || QHi > Cap)
        continue;
      Interval Clip =
          Interval::make(ceilDiv(static_cast<long long>(QLo), Q),
                         floorDiv(static_cast<long long>(QHi), Q));
      I = meetI(I, Clip);
    }
    return I;
  }

  /// Full abstract value of \p E under \p S.
  VarFact evalFact(const Expr *E, const State &S) const {
    VarFact F;
    F.Div = divergenceOf(E, K, divEnv(S));
    if (!E->type().isInt() && !E->type().isBool()) {
      F.Range = Interval::top();
      return F;
    }
    RangeEnv Env = rangeEnv(S);
    F.HasForm = canonicalForm(E, S, F.Form);
    Interval Ia = Interval::top();
    if (F.HasForm)
      Ia = clipByGuards(F.Form, rangeOfAffine(F.Form, L, Env), Env);
    F.Range = meetI(Ia, intervalOf(E, S));
    return F;
  }

  //===------------------------------------------------------------------===//
  // Straddle proofs and condition classification
  //===------------------------------------------------------------------===//

  /// Extremes of the tid part (Thread axis) or bid part (Block axis).
  void axisPart(const AffineExpr &A, bool ThreadAxis, long long &Min,
                long long &Max) const {
    Min = Max = 0;
    auto Acc = [&](long long C, long long Dim) {
      if (C > 0)
        Max += C * (Dim - 1);
      else
        Min += C * (Dim - 1);
    };
    if (ThreadAxis) {
      Acc(A.CTidx, L.BlockDimX);
      Acc(A.CTidy, L.BlockDimY);
    } else {
      Acc(A.CBidx, L.GridDimX);
      Acc(A.CBidy, L.GridDimY);
    }
  }

  /// Proves `Delta Cmp 0` evaluates both ways along the given axis in some
  /// actually-executing block/iteration: the axis-independent rest of the
  /// form must have an attained (Exact) extreme at which the axis span
  /// crosses the comparison boundary.
  bool provenSplit(const AffineExpr &Delta, BinOp Cmp, bool ThreadAxis,
                   const RangeEnv &Env) const {
    long long PartMin, PartMax;
    axisPart(Delta, ThreadAxis, PartMin, PartMax);
    if (PartMin == PartMax)
      return false;
    AffineExpr U = Delta;
    if (ThreadAxis)
      U.CTidx = U.CTidy = 0;
    else
      U.CBidx = U.CBidy = 0;
    Interval UI = rangeOfAffine(U, L, Env);
    if (!UI.Known || !UI.Exact)
      return false;
    for (long long Ucorner : {UI.Lo, UI.Hi})
      if (satisfiesCmp(Ucorner + PartMin, Cmp) !=
          satisfiesCmp(Ucorner + PartMax, Cmp))
        return true;
    return false;
  }

  CondClass classifyCond(const Expr *E, const State &S) const {
    CondClass CC;
    CC.Div = divergenceOf(E, K, divEnv(S));
    if (const auto *U = dyn_cast<Unary>(E); U && U->op() == UnOp::Not) {
      CC = classifyCond(U->sub(), S);
      if (CC.T == CondClass::Truth::True)
        CC.T = CondClass::Truth::False;
      else if (CC.T == CondClass::Truth::False)
        CC.T = CondClass::Truth::True;
      return CC;
    }
    const auto *B = dyn_cast<Binary>(E);
    if (!B)
      return CC;
    if (B->op() == BinOp::LAnd || B->op() == BinOp::LOr) {
      CondClass CL = classifyCond(B->lhs(), S);
      CondClass CR = classifyCond(B->rhs(), S);
      CC.Div = joinDiv(CL.Div, CR.Div);
      bool IsAnd = B->op() == BinOp::LAnd;
      auto True = CondClass::Truth::True;
      auto False = CondClass::Truth::False;
      if (IsAnd) {
        if (CL.T == False || CR.T == False)
          CC.T = False;
        else if (CL.T == True && CR.T == True)
          CC.T = True;
        // A split survives conjunction only if the other side always holds.
        CC.ThreadSplit = (CL.ThreadSplit && CR.T == True) ||
                         (CR.ThreadSplit && CL.T == True);
        CC.BlockSplit = (CL.BlockSplit && CR.T == True) ||
                        (CR.BlockSplit && CL.T == True);
      } else {
        if (CL.T == True || CR.T == True)
          CC.T = True;
        else if (CL.T == False && CR.T == False)
          CC.T = False;
        CC.ThreadSplit = (CL.ThreadSplit && CR.T == False) ||
                         (CR.ThreadSplit && CL.T == False);
        CC.BlockSplit = (CL.BlockSplit && CR.T == False) ||
                        (CR.BlockSplit && CL.T == False);
      }
      return CC;
    }
    if (!isCmpOp(B->op()) || !B->lhs()->type().isInt() ||
        !B->rhs()->type().isInt())
      return CC;
    AffineExpr FL, FR;
    if (!canonicalForm(B->lhs(), S, FL) || !canonicalForm(B->rhs(), S, FR))
      return CC;
    AffineExpr Delta = FL;
    Delta -= FR;
    normalizeAffine(Delta);
    RangeEnv Env = rangeEnv(S);
    // The affine form sees through composed uniformity (tidx - tidx).
    bool ThreadUniformForm =
        Delta.CTidx == 0 && Delta.CTidy == 0 &&
        std::all_of(Delta.LoopCoeffs.begin(), Delta.LoopCoeffs.end(),
                    [&](const auto &NC) {
                      auto It = S.Vars.find(NC.first);
                      return It != S.Vars.end() &&
                             It->second.Div.Thread == Divergence::Uniform;
                    });
    bool BlockUniformForm =
        Delta.CBidx == 0 && Delta.CBidy == 0 &&
        std::all_of(Delta.LoopCoeffs.begin(), Delta.LoopCoeffs.end(),
                    [&](const auto &NC) {
                      auto It = S.Vars.find(NC.first);
                      return It != S.Vars.end() &&
                             It->second.Div.Block == Divergence::Uniform;
                    });
    if (ThreadUniformForm)
      CC.Div.Thread = Divergence::Uniform;
    if (BlockUniformForm)
      CC.Div.Block = Divergence::Uniform;
    Interval DI = rangeOfAffine(Delta, L, Env);
    if (DI.Known) {
      bool AllTrue = false, AllFalse = false;
      switch (B->op()) {
      case BinOp::LT:
        AllTrue = DI.Hi < 0;
        AllFalse = DI.Lo >= 0;
        break;
      case BinOp::LE:
        AllTrue = DI.Hi <= 0;
        AllFalse = DI.Lo > 0;
        break;
      case BinOp::GT:
        AllTrue = DI.Lo > 0;
        AllFalse = DI.Hi <= 0;
        break;
      case BinOp::GE:
        AllTrue = DI.Lo >= 0;
        AllFalse = DI.Hi < 0;
        break;
      case BinOp::EQ:
        AllTrue = DI.Lo == 0 && DI.Hi == 0;
        AllFalse = !DI.contains(0);
        break;
      case BinOp::NE:
        AllTrue = !DI.contains(0);
        AllFalse = DI.Lo == 0 && DI.Hi == 0;
        break;
      default:
        break;
      }
      if (AllTrue) {
        CC.T = CondClass::Truth::True;
        CC.Div = {};
        return CC;
      }
      if (AllFalse) {
        CC.T = CondClass::Truth::False;
        CC.Div = {};
        return CC;
      }
    }
    CC.ThreadSplit = provenSplit(Delta, B->op(), /*ThreadAxis=*/true, Env);
    CC.BlockSplit = provenSplit(Delta, B->op(), /*ThreadAxis=*/false, Env);
    return CC;
  }

  /// Refines \p S for the branch where \p E is true (or false when
  /// \p Negate): pushes affine guard constraints and clips compared
  /// variables' intervals. \returns the number of constraints pushed.
  size_t refineByCond(State &S, const Expr *E, bool Negate) {
    size_t Pushed = 0;
    if (const auto *U = dyn_cast<Unary>(E); U && U->op() == UnOp::Not)
      return refineByCond(S, U->sub(), !Negate);
    const auto *B = dyn_cast<Binary>(E);
    if (!B)
      return 0;
    if ((B->op() == BinOp::LAnd && !Negate) ||
        (B->op() == BinOp::LOr && Negate)) {
      Pushed += refineByCond(S, B->lhs(), Negate);
      Pushed += refineByCond(S, B->rhs(), Negate);
      return Pushed;
    }
    if (!isCmpOp(B->op()) || !B->lhs()->type().isInt() ||
        !B->rhs()->type().isInt())
      return 0;
    BinOp Eff = Negate ? negateCmp(B->op()) : B->op();
    AffineExpr FL, FR;
    if (canonicalForm(B->lhs(), S, FL) && canonicalForm(B->rhs(), S, FR) &&
        Eff != BinOp::NE) {
      AffineExpr Delta = FL;
      Delta -= FR;
      normalizeAffine(Delta);
      Guards.push_back({Delta, Eff});
      ++Pushed;
    }
    clipVar(B->lhs(), Eff, B->rhs(), S);
    clipVar(B->rhs(), swapCmp(Eff), B->lhs(), S);
    return Pushed;
  }

  /// If \p VE is a tracked local, clip its interval by `VE Cmp Other`.
  void clipVar(const Expr *VE, BinOp Cmp, const Expr *Other, State &S) {
    const auto *V = dyn_cast<VarRef>(VE);
    if (!V)
      return;
    auto It = S.Vars.find(V->name());
    if (It == S.Vars.end())
      return;
    Interval IR = evalFact(Other, S).Range;
    if (!IR.Known)
      return;
    VarFact &F = It->second;
    if (Cmp == BinOp::EQ) {
      F.Range = meetI(F.Range, Interval::make(IR.Lo, IR.Hi));
      return;
    }
    if (!F.Range.Known)
      return;
    long long Lo = F.Range.Lo, Hi = F.Range.Hi;
    switch (Cmp) {
    case BinOp::LT:
      Hi = std::min(Hi, IR.Hi - 1);
      break;
    case BinOp::LE:
      Hi = std::min(Hi, IR.Hi);
      break;
    case BinOp::GT:
      Lo = std::max(Lo, IR.Lo + 1);
      break;
    case BinOp::GE:
      Lo = std::max(Lo, IR.Lo);
      break;
    default:
      return; // NE carries no interval information
    }
    if (Hi < Lo)
      Hi = Lo; // unreachable path; keep a degenerate enclosure
    if (Lo != F.Range.Lo || Hi != F.Range.Hi) {
      F.Range.Lo = Lo;
      F.Range.Hi = Hi;
      F.Range.Exact = false;
    }
  }

  //===------------------------------------------------------------------===//
  // State join / widen
  //===------------------------------------------------------------------===//

  static VarFact joinFact(const VarFact &A, const VarFact &B) {
    VarFact R;
    R.HasForm = A.HasForm && B.HasForm && affineEq(A.Form, B.Form);
    if (R.HasForm)
      R.Form = A.Form;
    R.Range = joinI(A.Range, B.Range);
    R.Div = joinDiv(A.Div, B.Div);
    return R;
  }

  static State joinState(const State &A, const State &B) {
    State R = A;
    for (const auto &[Name, FB] : B.Vars) {
      auto It = R.Vars.find(Name);
      if (It == R.Vars.end())
        R.Vars[Name] = FB; // declared on one path only: keep its fact
      else
        It->second = joinFact(It->second, FB);
    }
    return R;
  }

  static bool equalState(const State &A, const State &B) {
    return A.Vars == B.Vars;
  }

  static State widenState(const State &Old, const State &New) {
    State R = New;
    for (auto &[Name, F] : R.Vars) {
      auto It = Old.Vars.find(Name);
      if (It != Old.Vars.end() && F == It->second)
        continue;
      F.Range = Interval::top();
      F.HasForm = false;
    }
    return R;
  }

  //===------------------------------------------------------------------===//
  // Access and barrier fact recording
  //===------------------------------------------------------------------===//

  void collectAccesses(const Expr *E, const State &S,
                       const ArrayRef *StoreRef) {
    if (!E || !Record)
      return;
    forEachExprIn(const_cast<Expr *>(E), [&](Expr *Sub) {
      if (auto *AR = dyn_cast<ArrayRef>(Sub))
        recordAccess(AR, AR == StoreRef, S);
    });
  }

  void recordAccess(const ArrayRef *Ref, bool IsStore, const State &S) {
    AccessFact F;
    F.Ref = Ref;
    F.Array = Ref->base();
    F.IsStore = IsStore;
    F.Loc = Ref->loc();
    F.Guarded = Ctx.CondDepth > 0;

    std::vector<long long> Dims;
    int ElemLanes = 1;
    if (const ParamDecl *P = K.findParam(Ref->base())) {
      if (!P->IsArray)
        return;
      Dims.assign(P->Dims.begin(), P->Dims.end());
      ElemLanes = P->ElemTy.sizeInBytes() / 4;
      F.TotalWords = P->elemCount() * ElemLanes;
    } else {
      auto It = Shared.find(Ref->base());
      if (It == Shared.end())
        return; // unknown array: a structural error, not ours to judge
      F.IsShared = true;
      const DeclStmt *D = It->second;
      Dims.assign(D->sharedDims().begin(), D->sharedDims().end());
      ElemLanes = D->declType().sizeInBytes() / 4;
      F.TotalWords = D->sharedElemCount() * ElemLanes;
    }

    // Flat word offset, mirroring the simulator's bounds check: for a
    // reinterpreted vector view the single index is in vector units,
    // otherwise row-major element flattening scaled by the element lanes.
    RangeEnv Env = rangeEnv(S);
    bool HasForm = true;
    AffineExpr WordForm;
    Interval Words;
    DivFact AddrDiv;
    if (Ref->vecWidth() > 1) {
      F.Lanes = Ref->vecWidth();
      if (Ref->numIndices() != 1)
        return;
      AddrDiv = divergenceOf(Ref->index(0), K, divEnv(S));
      AffineExpr IF;
      HasForm = canonicalForm(Ref->index(0), S, IF);
      if (HasForm) {
        IF *= Ref->vecWidth();
        WordForm = IF;
      }
      Words = mulI(intervalOf(Ref->index(0), S),
                   Interval::point(Ref->vecWidth()));
    } else {
      F.Lanes = ElemLanes;
      if (Ref->numIndices() != Dims.size())
        return;
      std::vector<long long> Strides(Dims.size(), 1);
      for (size_t I = Dims.size(); I-- > 1;)
        Strides[I - 1] = Strides[I] * Dims[I];
      Words = Interval::point(0);
      WordForm = AffineExpr(0);
      DivEnv DE = divEnv(S);
      for (size_t I = 0; I < Dims.size(); ++I) {
        AddrDiv = joinDiv(AddrDiv, divergenceOf(Ref->index(I), K, DE));
        AffineExpr IF;
        if (HasForm && canonicalForm(Ref->index(I), S, IF)) {
          IF *= Strides[I];
          WordForm += IF;
        } else {
          HasForm = false;
        }
        Words = addI(Words, mulI(intervalOf(Ref->index(I), S),
                                 Interval::point(Strides[I])));
      }
      Words = mulI(Words, Interval::point(ElemLanes));
      if (HasForm)
        WordForm *= ElemLanes;
    }
    if (HasForm) {
      normalizeAffine(WordForm);
      Interval Ia =
          clipByGuards(WordForm, rangeOfAffine(WordForm, L, Env), Env);
      Words = meetI(Ia, Words);
    }
    F.Words = Words;
    F.AddrDiv = AddrDiv;

    const long long Total = F.TotalWords;
    if (Words.Known && Words.Lo >= 0 && Words.Hi + F.Lanes <= Total) {
      F.Bounds = Verdict::Proven;
    } else if (Ctx.ExecGuaranteed && Words.Known &&
               ((Words.Hi < 0 || Words.Lo + F.Lanes > Total) ||
                (Words.Exact &&
                 (Words.Lo < 0 || Words.Hi + F.Lanes > Total)))) {
      // Either every offset is invalid, or an attained endpoint is — and
      // the access provably executes, so the fault is certain.
      F.Bounds = Verdict::Violation;
    } else {
      F.Bounds = Verdict::Possible;
    }
    Res.Accesses.push_back(std::move(F));
  }

  void recordBarrier(const SyncStmt *Sync) {
    if (!Record)
      return;
    BarrierFact F;
    F.Sync = Sync;
    F.IsGlobal = Sync->isGlobal();
    DivFact C = joinDiv(Ctx.IfDiv, Ctx.LoopDiv);

    Verdict TV = Verdict::Proven;
    std::string TReason;
    if (C.Thread != Divergence::Uniform) {
      if (Ctx.IfThreadArmed) {
        TV = Verdict::Violation;
        TReason = "barrier under divergent control flow";
      } else if (Ctx.LoopThreadArmed) {
        TV = Verdict::Violation;
        TReason = "barrier inside loop with thread-dependent trip count";
      } else {
        TV = Verdict::Possible;
        TReason = Ctx.IfDiv.Thread != Divergence::Uniform
                      ? "barrier not proven to execute under uniform "
                        "control flow"
                      : "barrier inside loop whose trip count is not "
                        "proven thread-uniform";
      }
    }

    Verdict BV = Verdict::Proven;
    std::string BReason;
    if (Sync->isGlobal() && C.Block != Divergence::Uniform) {
      if (Ctx.LoopBlockArmed) {
        BV = Verdict::Violation;
        BReason = "__globalSync inside loop with block-dependent trip count";
      } else if (Ctx.IfBlockArmed) {
        BV = Verdict::Violation;
        BReason = "__globalSync under block-divergent control flow";
      } else {
        BV = Verdict::Possible;
        BReason = "__globalSync not proven to execute uniformly across "
                  "blocks";
      }
    }

    // Worst verdict wins; the thread axis breaks ties (its wording matches
    // the historical Verifier diagnostics).
    if (BV == Verdict::Violation && TV != Verdict::Violation) {
      F.Uniformity = BV;
      F.Reason = BReason;
    } else if (TV != Verdict::Proven) {
      F.Uniformity = TV;
      F.Reason = TReason;
    } else {
      F.Uniformity = BV;
      F.Reason = BReason;
    }
    Res.Barriers.push_back(std::move(F));
  }

  //===------------------------------------------------------------------===//
  // Statement analysis
  //===------------------------------------------------------------------===//

  void analyzeCompound(const CompoundStmt *C, State &S) {
    if (!C)
      return;
    for (const Stmt *St : C->body())
      analyzeStmt(St, S);
  }

  void analyzeStmt(const Stmt *St, State &S) {
    switch (St->kind()) {
    case StmtKind::Compound:
      analyzeCompound(cast<CompoundStmt>(St), S);
      break;
    case StmtKind::Decl: {
      const auto *D = cast<DeclStmt>(St);
      if (D->isShared())
        break;
      collectAccesses(D->init(), S, nullptr);
      VarFact F;
      if (D->init()) {
        F = evalFact(D->init(), S);
        sanitizeForm(F, D->name());
      } else {
        F.Div = {Divergence::Unknown, Divergence::Unknown};
      }
      S.Vars[D->name()] = F;
      break;
    }
    case StmtKind::Assign:
      analyzeAssign(cast<AssignStmt>(St), S);
      break;
    case StmtKind::If:
      analyzeIf(cast<IfStmt>(St), S);
      break;
    case StmtKind::For:
      analyzeFor(cast<ForStmt>(St), S);
      break;
    case StmtKind::While:
      analyzeWhile(cast<WhileStmt>(St), S);
      break;
    case StmtKind::Sync:
      recordBarrier(cast<SyncStmt>(St));
      break;
    }
  }

  /// Drops a form that references out-of-scope iterators or the variable
  /// being defined (self-reference after `i = i + 1`).
  void sanitizeForm(VarFact &F, const std::string &Target) const {
    if (!F.HasForm)
      return;
    for (const auto &[Name, C] : F.Form.LoopCoeffs)
      if (!ActiveIters.count(Name) || Name == Target) {
        F.HasForm = false;
        return;
      }
  }

  void analyzeAssign(const AssignStmt *A, State &S) {
    const ArrayRef *StoreRef = dyn_cast<ArrayRef>(A->lhs());
    collectAccesses(A->lhs(), S, StoreRef);
    collectAccesses(A->rhs(), S, nullptr);
    if (const auto *V = dyn_cast<VarRef>(A->lhs())) {
      if (K.findParam(V->name()))
        return; // store to scalar parameter: structural error
      VarFact New;
      if (A->op() == AssignOp::Assign) {
        New = evalFact(A->rhs(), S);
      } else {
        auto It = S.Vars.find(V->name());
        VarFact Old = It == S.Vars.end() ? VarFact() : It->second;
        if (It == S.Vars.end())
          Old.Div = {Divergence::Unknown, Divergence::Unknown};
        VarFact R = evalFact(A->rhs(), S);
        New.Div = joinDiv(Old.Div, R.Div);
        switch (A->op()) {
        case AssignOp::AddAssign:
          if (Old.HasForm && R.HasForm) {
            New.HasForm = true;
            New.Form = Old.Form;
            New.Form += R.Form;
            normalizeAffine(New.Form);
          }
          New.Range = addI(Old.Range, R.Range);
          break;
        case AssignOp::SubAssign:
          if (Old.HasForm && R.HasForm) {
            New.HasForm = true;
            New.Form = Old.Form;
            New.Form -= R.Form;
            normalizeAffine(New.Form);
          }
          New.Range = subI(Old.Range, R.Range);
          break;
        case AssignOp::MulAssign:
          if (Old.HasForm && R.HasForm && R.Form.isConstant()) {
            New.HasForm = true;
            New.Form = Old.Form;
            New.Form *= R.Form.Const;
          } else if (Old.HasForm && Old.Form.isConstant() && R.HasForm) {
            New.HasForm = true;
            New.Form = R.Form;
            New.Form *= Old.Form.Const;
          }
          New.Range = mulI(Old.Range, R.Range);
          break;
        case AssignOp::Assign:
          break;
        }
      }
      sanitizeForm(New, V->name());
      S.Vars[V->name()] = New;
    } else if (const auto *Mem = dyn_cast<Member>(A->lhs())) {
      if (const auto *BV = dyn_cast<VarRef>(Mem->baseExpr())) {
        auto It = S.Vars.find(BV->name());
        if (It != S.Vars.end()) {
          It->second.Div =
              joinDiv(It->second.Div, evalFact(A->rhs(), S).Div);
          It->second.Range = Interval::top();
          It->second.HasForm = false;
        }
      }
    }
  }

  void analyzeIf(const IfStmt *If, State &S) {
    collectAccesses(If->cond(), S, nullptr);
    CondClass CC = classifyCond(If->cond(), S);

    if (CC.T == CondClass::Truth::True) {
      // Transparent: refine and fall through; no divergence, no guard.
      size_t Mark = Guards.size();
      refineByCond(S, If->cond(), /*Negate=*/false);
      analyzeCompound(If->thenBody(), S);
      Guards.resize(Mark);
      return;
    }
    if (CC.T == CondClass::Truth::False) {
      if (!If->elseBody())
        return;
      size_t Mark = Guards.size();
      refineByCond(S, If->cond(), /*Negate=*/true);
      analyzeCompound(If->elseBody(), S);
      Guards.resize(Mark);
      return;
    }

    CtxState Saved = Ctx;
    bool WasGuaranteed = Ctx.ExecGuaranteed;
    Ctx.enterUncertain();
    Ctx.IfDiv = joinDiv(Saved.IfDiv, CC.Div);
    Ctx.IfThreadArmed = CC.ThreadSplit && WasGuaranteed;
    Ctx.IfBlockArmed = CC.BlockSplit && WasGuaranteed;

    State ThenS = S;
    {
      size_t Mark = Guards.size();
      refineByCond(ThenS, If->cond(), /*Negate=*/false);
      analyzeCompound(If->thenBody(), ThenS);
      Guards.resize(Mark);
    }
    State ElseS = S;
    {
      size_t Mark = Guards.size();
      refineByCond(ElseS, If->cond(), /*Negate=*/true);
      if (If->elseBody())
        analyzeCompound(If->elseBody(), ElseS);
      Guards.resize(Mark);
    }
    Ctx = Saved;
    S = joinState(ThenS, ElseS);
  }

  /// Does \p Body assign to the variable \p Name (directly)?
  static bool bodyAssigns(const CompoundStmt *Body, const std::string &Name) {
    bool Found = false;
    forEachStmt(const_cast<CompoundStmt *>(Body), [&](Stmt *St) {
      if (const auto *A = dyn_cast<AssignStmt>(St))
        if (const auto *V = dyn_cast<VarRef>(A->lhs()))
          if (V->name() == Name)
            Found = true;
    });
    return Found;
  }

  void analyzeFor(const ForStmt *F, State &S) {
    collectAccesses(F->init(), S, nullptr);

    VarFact InitF = evalFact(F->init(), S);
    VarFact BoundF = evalFact(F->bound(), S);
    VarFact StepF = evalFact(F->step(), S);

    const bool IterMutated = bodyAssigns(F->body(), F->iterName());

    // Trip >= 1 for every thread?
    bool TripCertain = false;
    if (InitF.Range.Known && BoundF.Range.Known) {
      switch (F->cmp()) {
      case CmpKind::LT:
        TripCertain = InitF.Range.Hi < BoundF.Range.Lo;
        break;
      case CmpKind::LE:
        TripCertain = InitF.Range.Hi <= BoundF.Range.Lo;
        break;
      case CmpKind::GT:
        TripCertain = InitF.Range.Lo > BoundF.Range.Hi;
        break;
      case CmpKind::GE:
        TripCertain = InitF.Range.Lo >= BoundF.Range.Hi;
        break;
      }
    }

    DivFact TripDiv = joinDiv(joinDiv(InitF.Div, BoundF.Div), StepF.Div);

    // Proven trip-count split: unit positive step, upward loop, affine
    // bound-minus-init with an attained straddle (trips differ between
    // two threads / blocks of some executing instance).
    bool TripThreadSplit = false, TripBlockSplit = false;
    if (!IterMutated && F->stepKind() == StepKind::Add &&
        StepF.Range.isPoint() && StepF.Range.Lo == 1 &&
        (F->cmp() == CmpKind::LT || F->cmp() == CmpKind::LE) &&
        InitF.HasForm && BoundF.HasForm) {
      AffineExpr Delta = BoundF.Form;
      Delta -= InitF.Form;
      normalizeAffine(Delta);
      long long Bias = F->cmp() == CmpKind::LE ? 1 : 0;
      RangeEnv Env = rangeEnv(S);
      auto SplitOn = [&](bool ThreadAxis) {
        long long PartMin, PartMax;
        axisPart(Delta, ThreadAxis, PartMin, PartMax);
        if (PartMin == PartMax)
          return false;
        AffineExpr U = Delta;
        if (ThreadAxis)
          U.CTidx = U.CTidy = 0;
        else
          U.CBidx = U.CBidy = 0;
        Interval UI = rangeOfAffine(U, L, Env);
        if (!UI.Known || !UI.Exact)
          return false;
        for (long long Ucorner : {UI.Lo, UI.Hi}) {
          long long TripA = std::max(0LL, Ucorner + PartMin + Bias);
          long long TripB = std::max(0LL, Ucorner + PartMax + Bias);
          if (TripA != TripB)
            return true;
        }
        return false;
      };
      TripThreadSplit = SplitOn(/*ThreadAxis=*/true);
      TripBlockSplit = SplitOn(/*ThreadAxis=*/false);
    }

    // Iterator abstract value over all iterations.
    VarFact IterF = iteratorFact(F, InitF, BoundF, StepF, IterMutated);

    CtxState Saved = Ctx;
    if (!TripCertain)
      Ctx.enterUncertain();
    Ctx.LoopDiv = joinDiv(Saved.LoopDiv, TripDiv);
    Ctx.LoopThreadArmed =
        (TripCertain ? Ctx.LoopThreadArmed : false) || TripThreadSplit;
    Ctx.LoopBlockArmed =
        (TripCertain ? Ctx.LoopBlockArmed : false) || TripBlockSplit;

    ActiveIters.insert(F->iterName());

    State In = S;
    In.Vars[F->iterName()] = IterF;
    bool SavedRecord = Record;
    Record = false;
    bool Converged = false;
    for (int It = 0; It < 4 && !Converged; ++It) {
      State B = In;
      analyzeCompound(F->body(), B);
      State J = joinState(In, B);
      if (equalState(J, In))
        Converged = true;
      else
        In = It >= 2 ? widenState(In, J) : J;
    }
    Record = SavedRecord;

    // Recording pass on the stable state: bound and step re-evaluate each
    // round, so their accesses are recorded against the widened facts.
    collectAccesses(F->bound(), In, nullptr);
    collectAccesses(F->step(), In, nullptr);
    State Fin = In;
    analyzeCompound(F->body(), Fin);
    State Post = joinState(In, Fin);

    ActiveIters.erase(F->iterName());
    Ctx = Saved;

    // The iterator's exit value is bound-shaped, not range-shaped; drop to
    // top rather than pretend. Forms naming the dead iterator die with it.
    auto ItV = Post.Vars.find(F->iterName());
    if (ItV != Post.Vars.end()) {
      ItV->second.Range = Interval::top();
      ItV->second.HasForm = false;
      ItV->second.Div = joinDiv(ItV->second.Div, BoundF.Div);
    }
    for (auto &[Name, VF] : Post.Vars)
      if (VF.HasForm && VF.Form.LoopCoeffs.count(F->iterName()))
        VF.HasForm = false;
    S = std::move(Post);
  }

  VarFact iteratorFact(const ForStmt *F, const VarFact &InitF,
                       const VarFact &BoundF, const VarFact &StepF,
                       bool IterMutated) const {
    VarFact IterF;
    IterF.Div = joinDiv(InitF.Div, StepF.Div);
    IterF.HasForm = true;
    IterF.Form = AffineExpr();
    IterF.Form.LoopCoeffs[F->iterName()] = 1;
    IterF.Range = Interval::top();
    if (IterMutated)
      return IterF;
    const Interval &II = InitF.Range, &BI = BoundF.Range, &SI = StepF.Range;
    if (F->stepKind() == StepKind::Add && SI.Known) {
      if ((F->cmp() == CmpKind::LT || F->cmp() == CmpKind::LE) &&
          SI.Lo >= 1 && II.Known && BI.Known) {
        long long Lo = II.Lo;
        long long Hi = BI.Hi - (F->cmp() == CmpKind::LT ? 1 : 0);
        if (Hi < Lo)
          Hi = Lo; // possibly zero-trip; body never sees these values
        IterF.Range = Interval::make(Lo, Hi);
        // Constant bounds: the exact last attained value, and attainment
        // independent of tid/bid (the Exact discipline rangeOfAffine
        // relies on).
        if (II.isPoint() && BI.isPoint() && SI.isPoint() &&
            II.Exact && BI.Exact) {
          long long BEff = BI.Lo - (F->cmp() == CmpKind::LT ? 1 : 0);
          if (BEff >= II.Lo) {
            long long S0 = SI.Lo;
            long long Last = II.Lo + ((BEff - II.Lo) / S0) * S0;
            IterF.Range = Interval::make(II.Lo, Last, true);
          }
        }
      } else if ((F->cmp() == CmpKind::GT || F->cmp() == CmpKind::GE) &&
                 SI.Hi <= -1 && II.Known && BI.Known) {
        long long Hi = II.Hi;
        long long Lo = BI.Lo + (F->cmp() == CmpKind::GT ? 1 : 0);
        if (Hi < Lo)
          Hi = Lo;
        IterF.Range = Interval::make(Lo, Hi);
      }
    } else if (F->stepKind() == StepKind::Div && SI.Known && SI.Lo >= 2 &&
               (F->cmp() == CmpKind::GT || F->cmp() == CmpKind::GE) &&
               II.Known && BI.Known && BI.Lo >= 0) {
      // Halving loop: body values satisfy the condition and shrink from
      // the initial value toward the bound.
      long long Lo = BI.Lo + (F->cmp() == CmpKind::GT ? 1 : 0);
      long long Hi = std::max(II.Hi, Lo);
      IterF.Range = Interval::make(Lo, Hi);
    }
    return IterF;
  }

  void analyzeWhile(const WhileStmt *W, State &S) {
    // Entry-state classification: a proven split here means a divergent
    // subset of threads enters the loop at all.
    CondClass CCEntry = classifyCond(W->cond(), S);

    CtxState Saved = Ctx;
    Ctx.enterUncertain(); // the body may execute zero times
    Ctx.LoopThreadArmed = CCEntry.ThreadSplit;
    Ctx.LoopBlockArmed = CCEntry.BlockSplit;

    State In = S;
    bool SavedRecord = Record;
    Record = false;
    size_t Mark = Guards.size();
    refineByCond(In, W->cond(), /*Negate=*/false);
    bool Converged = false;
    for (int It = 0; It < 4 && !Converged; ++It) {
      State B = In;
      analyzeCompound(W->body(), B);
      State J = joinState(In, B);
      if (equalState(J, In))
        Converged = true;
      else
        In = It >= 2 ? widenState(In, J) : J;
    }
    Record = SavedRecord;

    // The trip count depends on however the condition evolves; classify on
    // the stable state for the may-divergence join.
    CondClass CCStable = classifyCond(W->cond(), In);
    Ctx.LoopDiv = joinDiv(Saved.LoopDiv, CCStable.Div);

    // Recording pass: the condition re-evaluates every round against the
    // widened facts, then the body.
    collectAccesses(W->cond(), In, nullptr);
    State Fin = In;
    analyzeCompound(W->body(), Fin);
    Guards.resize(Mark);
    State Post = joinState(In, Fin);

    Ctx = Saved;
    S = joinState(S, Post); // zero-trip: the entry state survives
    // On exit the condition is false; clip refinable variables by its
    // negation (a persistent fact, unlike the scoped affine guards).
    refineVarOnly(S, W->cond(), /*Negate=*/true);
  }

  /// Variable clipping without pushing scoped affine guards (for facts
  /// that persist past a construct, like a while loop's exit condition).
  void refineVarOnly(State &S, const Expr *E, bool Negate) {
    size_t Mark = Guards.size();
    refineByCond(S, E, Negate);
    Guards.resize(Mark);
  }

  const KernelFunction &K;
  const LaunchConfig &L;
  DataflowResult Res;
  std::map<std::string, const DeclStmt *> Shared;
  std::set<std::string> ActiveIters;
  std::vector<Constraint> Guards;
  CtxState Ctx;
  /// False during fixpoint warm-up passes so each syntactic access /
  /// barrier yields exactly one fact, computed against the stable state.
  bool Record = true;
};

} // namespace

bool VarFact::operator==(const VarFact &O) const {
  if (HasForm != O.HasForm || !(Range == O.Range) || !(Div == O.Div))
    return false;
  return !HasForm || affineEq(Form, O.Form);
}

bool DataflowResult::boundsClean() const {
  return std::all_of(Accesses.begin(), Accesses.end(), [](const AccessFact &A) {
    return A.Bounds == Verdict::Proven;
  });
}

bool DataflowResult::barriersClean() const {
  return std::all_of(Barriers.begin(), Barriers.end(), [](const BarrierFact &B) {
    return B.Uniformity == Verdict::Proven;
  });
}

bool DataflowResult::anyViolation() const {
  for (const AccessFact &A : Accesses)
    if (A.Bounds == Verdict::Violation)
      return true;
  for (const BarrierFact &B : Barriers)
    if (B.Uniformity == Verdict::Violation)
      return true;
  return false;
}

const AccessFact *DataflowResult::factFor(const ArrayRef *Ref) const {
  for (const AccessFact &A : Accesses)
    if (A.Ref == Ref)
      return &A;
  return nullptr;
}

DataflowResult gpuc::runDataflow(const KernelFunction &K) {
  return Engine(K).run();
}

//===-- analysis/Divergence.cpp - Thread-divergence lattice ---------------===//

#include "analysis/Divergence.h"

#include <algorithm>

using namespace gpuc;

const char *gpuc::divergenceName(Divergence D) {
  switch (D) {
  case Divergence::Uniform:
    return "uniform";
  case Divergence::TidDependent:
    return "tid-dependent";
  case Divergence::Unknown:
    return "unknown";
  }
  return "?";
}

Divergence gpuc::joinDiv(Divergence A, Divergence B) {
  return static_cast<Divergence>(
      std::max(static_cast<int>(A), static_cast<int>(B)));
}

DivFact gpuc::joinDiv(const DivFact &A, const DivFact &B) {
  return {joinDiv(A.Thread, B.Thread), joinDiv(A.Block, B.Block)};
}

DivFact gpuc::divergenceOf(const Expr *E, const KernelFunction &K,
                           const DivEnv &Env) {
  switch (E->kind()) {
  case ExprKind::IntLit:
  case ExprKind::FloatLit:
    return {};
  case ExprKind::BuiltinRef:
    switch (cast<BuiltinRef>(E)->id()) {
    case BuiltinId::Tidx:
    case BuiltinId::Tidy:
      return {Divergence::TidDependent, Divergence::Uniform};
    case BuiltinId::Bidx:
    case BuiltinId::Bidy:
      return {Divergence::Uniform, Divergence::TidDependent};
    case BuiltinId::Idx:
    case BuiltinId::Idy:
      return {Divergence::TidDependent, Divergence::TidDependent};
    case BuiltinId::BlockDimX:
    case BuiltinId::BlockDimY:
    case BuiltinId::GridDimX:
    case BuiltinId::GridDimY:
      return {};
    }
    return {Divergence::Unknown, Divergence::Unknown};
  case ExprKind::VarRef: {
    const auto *V = cast<VarRef>(E);
    if (K.findParam(V->name()))
      return {}; // scalar parameters are launch-wide constants
    auto It = Env.Vars.find(V->name());
    if (It != Env.Vars.end())
      return It->second;
    return {Divergence::Unknown, Divergence::Unknown};
  }
  case ExprKind::ArrayRef:
    // The loaded value may have been written by any thread of any block.
    return {Divergence::Unknown, Divergence::Unknown};
  case ExprKind::Binary: {
    const auto *B = cast<Binary>(E);
    return joinDiv(divergenceOf(B->lhs(), K, Env),
                   divergenceOf(B->rhs(), K, Env));
  }
  case ExprKind::Unary:
    return divergenceOf(cast<Unary>(E)->sub(), K, Env);
  case ExprKind::Call: {
    DivFact D;
    for (const Expr *A : cast<Call>(E)->args())
      D = joinDiv(D, divergenceOf(A, K, Env));
    return D;
  }
  case ExprKind::Member:
    return divergenceOf(cast<Member>(E)->baseExpr(), K, Env);
  }
  return {Divergence::Unknown, Divergence::Unknown};
}

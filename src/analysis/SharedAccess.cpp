//===-- analysis/SharedAccess.cpp - Barrier phases and shared accesses ----===//

#include "analysis/SharedAccess.h"

#include "ast/Printer.h"
#include "ast/Walk.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace gpuc;

namespace {

bool containsBarrier(const Stmt *S) {
  bool Found = false;
  forEachStmt(const_cast<Stmt *>(S), [&](Stmt *Sub) {
    if (isa<SyncStmt>(Sub))
      Found = true;
  });
  return Found;
}

/// Substitutes concrete iterator bindings into \p A's loop terms.
void substituteEnv(AffineExpr &A, const std::map<std::string, long long> &Env) {
  for (const auto &[Name, Value] : Env) {
    auto It = A.LoopCoeffs.find(Name);
    if (It == A.LoopCoeffs.end())
      continue;
    A.Const += It->second * Value;
    A.LoopCoeffs.erase(It);
  }
}

/// Builds the affine form of \p E and folds in \p Env. Fails for
/// thread-dependent or nonlinear expressions.
bool buildConstAffine(const Expr *E, const KernelFunction &K,
                      const std::map<std::string, long long> &Env,
                      long long &Out) {
  AffineExpr A;
  if (!buildAffine(E, K, A))
    return false;
  substituteEnv(A, Env);
  if (!A.isConstant())
    return false;
  Out = A.Const;
  return true;
}

class PhaseBuilder {
public:
  PhaseBuilder(const KernelFunction &K, const PhaseModelOptions &Opt)
      : K(K), Opt(Opt) {
    for (const DeclStmt *D : K.sharedDecls())
      SharedByName[D->name()] = D;
  }

  PhaseModel run() {
    walkStmt(K.body());
    Model.NumPhases = Phase + 1;
    return std::move(Model);
  }

private:
  void problem(std::string Message, bool Fatal) {
    if (Fatal)
      Model.Analyzable = false;
    Model.Problems.push_back(std::move(Message));
  }

  void walkStmt(const Stmt *S) {
    switch (S->kind()) {
    case StmtKind::Compound:
      for (const Stmt *Child : cast<CompoundStmt>(S)->body())
        walkStmt(Child);
      return;
    case StmtKind::Decl: {
      const auto *D = cast<DeclStmt>(S);
      if (D->init())
        collectReads(D->init());
      return;
    }
    case StmtKind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      if (const auto *Ref = dyn_cast<ArrayRef>(A->lhs())) {
        if (SharedByName.count(Ref->base())) {
          addAccess(Ref, /*IsWrite=*/true,
                    A->op() == AssignOp::Assign ? A->rhs() : nullptr);
          if (A->op() != AssignOp::Assign)
            addAccess(Ref, /*IsWrite=*/false);
        }
        for (const Expr *I : Ref->indices())
          collectReads(I);
      } else {
        collectReads(A->lhs());
      }
      collectReads(A->rhs());
      return;
    }
    case StmtKind::If:
      walkIf(cast<IfStmt>(S));
      return;
    case StmtKind::For:
      walkFor(cast<ForStmt>(S));
      return;
    case StmtKind::While:
      walkWhile(cast<WhileStmt>(S));
      return;
    case StmtKind::Sync:
      if (!GuardStack.empty() || UnknownGuardDepth > 0)
        problem("barrier under divergent control flow; phases cannot be "
                "delimited",
                /*Fatal=*/true);
      if (!FreeLoops.empty())
        problem(strFormat("barrier inside loop '%s' whose trip count was not "
                          "resolved",
                          FreeLoops.back().Name.c_str()),
                /*Fatal=*/true);
      ++Phase;
      return;
    }
  }

  void walkIf(const IfStmt *If) {
    collectReads(If->cond());
    std::vector<AccessGuard> ThenGuards, ElseGuards;
    bool ThenExact = buildGuards(If->cond(), /*Negate=*/false, ThenGuards);
    bool ElseExact = buildGuards(If->cond(), /*Negate=*/true, ElseGuards);

    size_t Mark = GuardStack.size();
    if (ThenExact)
      GuardStack.insert(GuardStack.end(), ThenGuards.begin(),
                        ThenGuards.end());
    else
      ++UnknownGuardDepth;
    walkStmt(If->thenBody());
    GuardStack.resize(Mark);
    if (!ThenExact)
      --UnknownGuardDepth;

    if (!If->elseBody())
      return;
    if (ElseExact)
      GuardStack.insert(GuardStack.end(), ElseGuards.begin(),
                        ElseGuards.end());
    else
      ++UnknownGuardDepth;
    walkStmt(If->elseBody());
    GuardStack.resize(Mark);
    if (!ElseExact)
      --UnknownGuardDepth;
  }

  /// Converts \p Cond (or its negation) into conjunctive affine guards.
  /// \returns false when the condition is not exactly representable; the
  /// caller then treats the branch as may-taken.
  bool buildGuards(const Expr *Cond, bool Negate,
                   std::vector<AccessGuard> &Out) {
    if (const auto *B = dyn_cast<Binary>(Cond)) {
      // De Morgan: !(a && b) = !a || !b. A conjunction stays exact
      // unnegated; a disjunction stays exact negated.
      if (B->op() == BinOp::LAnd && !Negate)
        return buildGuards(B->lhs(), false, Out) &&
               buildGuards(B->rhs(), false, Out);
      if (B->op() == BinOp::LOr && Negate)
        return buildGuards(B->lhs(), true, Out) &&
               buildGuards(B->rhs(), true, Out);
      if (B->op() == BinOp::LAnd || B->op() == BinOp::LOr)
        return false;
      BinOp Op = B->op();
      switch (Op) {
      case BinOp::LT:
      case BinOp::LE:
      case BinOp::GT:
      case BinOp::GE:
      case BinOp::EQ:
      case BinOp::NE:
        break;
      default:
        return false;
      }
      AffineExpr L, R;
      if (!buildAffine(B->lhs(), K, L) || !buildAffine(B->rhs(), K, R))
        return false;
      if (Negate) {
        switch (Op) {
        case BinOp::LT:
          Op = BinOp::GE;
          break;
        case BinOp::LE:
          Op = BinOp::GT;
          break;
        case BinOp::GT:
          Op = BinOp::LE;
          break;
        case BinOp::GE:
          Op = BinOp::LT;
          break;
        case BinOp::EQ:
          Op = BinOp::NE;
          break;
        case BinOp::NE:
          Op = BinOp::EQ;
          break;
        default:
          return false;
        }
      }
      AccessGuard G;
      G.Delta = L;
      G.Delta -= R;
      substituteEnv(G.Delta, SyncIters);
      G.Cmp = Op;
      Out.push_back(std::move(G));
      return true;
    }
    if (const auto *U = dyn_cast<Unary>(Cond))
      if (U->op() == UnOp::Not)
        return buildGuards(U->sub(), !Negate, Out);
    return false;
  }

  void walkFor(const ForStmt *F) {
    collectReads(F->init());
    collectReads(F->bound());
    collectReads(F->step());
    if (!containsBarrier(F->body())) {
      EnumLoop L = enumerateLoopValues(F, K, SyncIters, Opt.FreeLoopValueCap);
      if (L.Capped)
        Model.Sampled = true;
      FreeLoops.push_back(std::move(L));
      walkStmt(F->body());
      FreeLoops.pop_back();
      return;
    }

    // A loop containing a barrier: unroll it with concrete iterator values
    // so phases advance across iterations.
    if (!GuardStack.empty() || UnknownGuardDepth > 0 || !FreeLoops.empty()) {
      problem(strFormat("loop '%s' contains a barrier under divergent or "
                        "unresolved control flow",
                        F->iterName().c_str()),
              /*Fatal=*/true);
      walkStmt(F->body()); // still collect accesses and count phases once
      return;
    }
    EnumLoop L = enumerateLoopValues(F, K, SyncIters, Opt.SyncLoopCap);
    if (!L.Resolved) {
      problem(strFormat("cannot resolve trip count of loop '%s' containing "
                        "a barrier (thread-dependent or data-dependent "
                        "bounds?)",
                        F->iterName().c_str()),
              /*Fatal=*/true);
      walkStmt(F->body());
      return;
    }
    if (L.Capped) {
      Model.Sampled = true;
      problem(strFormat("loop '%s' containing a barrier unrolled for its "
                        "first %d iterations only",
                        F->iterName().c_str(), Opt.SyncLoopCap),
              /*Fatal=*/false);
    }
    for (long long V : L.Values) {
      SyncIters[F->iterName()] = V;
      walkStmt(F->body());
    }
    SyncIters.erase(F->iterName());
  }

  void walkWhile(const WhileStmt *W) {
    collectReads(W->cond());
    if (containsBarrier(W->body())) {
      // A while's trip count is condition-controlled and in general
      // thread-dependent; no symbolic unrolling is possible, so barriers
      // inside defeat phase delimitation outright.
      problem("while loop contains a barrier; trip count is not statically "
              "analyzable",
              /*Fatal=*/true);
      walkStmt(W->body()); // still collect accesses once
      return;
    }
    // Body accesses execute only while the (unmodelled) condition holds:
    // treat them as under an unknown guard, over-approximating may-access.
    ++UnknownGuardDepth;
    walkStmt(W->body());
    --UnknownGuardDepth;
  }

  void collectReads(const Expr *E) {
    if (!E)
      return;
    forEachExprIn(const_cast<Expr *>(E), [&](Expr *Sub) {
      if (const auto *Ref = dyn_cast<ArrayRef>(Sub))
        if (SharedByName.count(Ref->base()))
          addAccess(Ref, /*IsWrite=*/false);
    });
  }

  /// Captures the value signature of a plain staging store whose RHS is a
  /// single global-array load: same source element implies same stored
  /// value, so overlapping writes with equal signatures are benign.
  void buildSrcSignature(const Expr *RHS, SharedAccess &A) {
    const auto *Src = dyn_cast<ArrayRef>(RHS);
    if (!Src || SharedByName.count(Src->base()) || Src->vecWidth() > 1)
      return;
    const ParamDecl *P = K.findParam(Src->base());
    if (!P || !P->IsArray || Src->numIndices() != P->Dims.size())
      return;
    std::vector<long long> Strides(P->Dims.size(), 1);
    for (int I = static_cast<int>(P->Dims.size()) - 2; I >= 0; --I)
      Strides[I] = Strides[I + 1] * P->Dims[I + 1];
    AffineExpr Flat;
    for (size_t I = 0; I < P->Dims.size(); ++I) {
      AffineExpr Dim;
      if (!buildAffine(Src->index(I), K, Dim))
        return;
      substituteEnv(Dim, SyncIters);
      Dim *= Strides[I];
      Flat += Dim;
    }
    A.HasSrc = true;
    A.SrcArray = Src->base();
    A.SrcAddr = Flat;
  }

  void addAccess(const ArrayRef *Ref, bool IsWrite,
                 const Expr *StoreRHS = nullptr) {
    const DeclStmt *D = SharedByName[Ref->base()];
    SharedAccess A;
    A.Ref = Ref;
    A.Decl = D;
    A.IsWrite = IsWrite;
    A.Phase = Phase;
    A.Loops = FreeLoops;
    A.Guards = GuardStack;
    A.UnknownGuard = UnknownGuardDepth > 0;
    A.Loc = Ref->loc();
    if (IsWrite && StoreRHS)
      buildSrcSignature(StoreRHS, A);

    const int DeclLanes = D->declType().vectorWidth();
    A.Lanes = Ref->type().isFloatVector() ? Ref->type().vectorWidth() : 1;
    if (Ref->vecWidth() > 1) {
      // Reinterpreted flat vector view: one index in vector-element units.
      AffineExpr Idx;
      if (Ref->numIndices() == 1 && buildAffine(Ref->index(0), K, Idx)) {
        Idx *= Ref->vecWidth();
        substituteEnv(Idx, SyncIters);
        A.FlatFloat = Idx;
        A.Resolved = true;
      }
      Model.Accesses.push_back(std::move(A));
      return;
    }

    const std::vector<int> &Dims = D->sharedDims();
    if (Ref->numIndices() != Dims.size()) {
      Model.Accesses.push_back(std::move(A)); // unresolved: bad arity
      return;
    }
    // Row-major element strides.
    std::vector<long long> Strides(Dims.size(), 1);
    for (int I = static_cast<int>(Dims.size()) - 2; I >= 0; --I)
      Strides[I] = Strides[I + 1] * Dims[I + 1];

    AffineExpr Flat;
    bool Ok = true;
    for (size_t I = 0; I < Dims.size(); ++I) {
      AffineExpr Dim;
      if (!buildAffine(Ref->index(I), K, Dim)) {
        Ok = false;
        break;
      }
      substituteEnv(Dim, SyncIters);
      A.DimAffine.push_back(Dim);
      Dim *= Strides[I];
      Flat += Dim;
    }
    if (Ok) {
      Flat *= DeclLanes;
      A.FlatFloat = Flat;
      A.Resolved = true;
    } else {
      A.DimAffine.clear();
    }
    Model.Accesses.push_back(std::move(A));
  }

  const KernelFunction &K;
  const PhaseModelOptions &Opt;
  PhaseModel Model;
  int Phase = 0;
  std::map<std::string, long long> SyncIters;
  std::vector<EnumLoop> FreeLoops;
  std::vector<AccessGuard> GuardStack;
  int UnknownGuardDepth = 0;
  std::map<std::string, const DeclStmt *> SharedByName;
};

} // namespace

EnumLoop gpuc::enumerateLoopValues(const ForStmt *F, const KernelFunction &K,
                                   const std::map<std::string, long long> &Env,
                                   int Cap) {
  EnumLoop L;
  L.Name = F->iterName();
  long long Init = 0, Bound = 0, Step = 0;
  if (!buildConstAffine(F->init(), K, Env, Init) ||
      !buildConstAffine(F->bound(), K, Env, Bound) ||
      !buildConstAffine(F->step(), K, Env, Step))
    return L;

  auto InRange = [&](long long V) {
    switch (F->cmp()) {
    case CmpKind::LT:
      return V < Bound;
    case CmpKind::LE:
      return V <= Bound;
    case CmpKind::GT:
      return V > Bound;
    case CmpKind::GE:
      return V >= Bound;
    }
    return false;
  };

  if (F->stepKind() == StepKind::Add) {
    // Ascending loops step forward, descending loops step backward; a step
    // in the wrong direction would not terminate.
    bool Ascending = F->cmp() == CmpKind::LT || F->cmp() == CmpKind::LE;
    if ((Ascending && Step <= 0) || (!Ascending && Step >= 0))
      return L;
    L.Resolved = true;
    long long V = Init;
    while (InRange(V)) {
      if (static_cast<int>(L.Values.size()) >= Cap) {
        L.Capped = true;
        break;
      }
      L.Values.push_back(V);
      V += Step;
    }
    if (!L.Values.empty()) {
      L.Min = *std::min_element(L.Values.begin(), L.Values.end());
      L.Max = *std::max_element(L.Values.begin(), L.Values.end());
      if (L.Capped) {
        // Analytic last value for interval reasoning past the cap.
        long long Span = Ascending ? Bound - Init : Init - Bound;
        long long AbsStep = Step > 0 ? Step : -Step;
        long long Extra = F->cmp() == CmpKind::LE || F->cmp() == CmpKind::GE
                              ? 1
                              : 0;
        long long Trip = (Span + Extra + AbsStep - 1) / AbsStep;
        long long LastV = Init + (Trip - 1) * Step;
        L.Min = std::min(L.Min, LastV);
        L.Max = std::max(L.Max, LastV);
      }
    }
    return L;
  }

  // Halving loops (i = i / Step) of the reduction kernels.
  if (Step < 2)
    return L;
  L.Resolved = true;
  long long V = Init;
  while (InRange(V)) {
    if (static_cast<int>(L.Values.size()) >= Cap) {
      L.Capped = true;
      break;
    }
    L.Values.push_back(V);
    if (V == 0)
      break; // 0 / Step == 0 would loop forever
    V /= Step;
  }
  if (!L.Values.empty()) {
    L.Min = *std::min_element(L.Values.begin(), L.Values.end());
    L.Max = *std::max_element(L.Values.begin(), L.Values.end());
  }
  return L;
}

bool gpuc::guardHolds(const AccessGuard &G, long long Tidx, long long Tidy,
                      long long Bidx, long long Bidy,
                      const std::map<std::string, long long> &LoopValues) {
  long long D = G.Delta.evaluate(Tidx, Tidy, Bidx, Bidy, LoopValues);
  switch (G.Cmp) {
  case BinOp::LT:
    return D < 0;
  case BinOp::LE:
    return D <= 0;
  case BinOp::GT:
    return D > 0;
  case BinOp::GE:
    return D >= 0;
  case BinOp::EQ:
    return D == 0;
  case BinOp::NE:
    return D != 0;
  default:
    return true;
  }
}

PhaseModel gpuc::buildPhaseModel(const KernelFunction &K,
                                 const PhaseModelOptions &Opt) {
  return PhaseBuilder(K, Opt).run();
}

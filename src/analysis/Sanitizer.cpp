//===-- analysis/Sanitizer.cpp - Static kernel sanitizer ------------------===//

#include "analysis/Sanitizer.h"

#include "support/StringUtils.h"

#include <memory>
#include <mutex>

using namespace gpuc;

RaceReport gpuc::sanitizeKernel(KernelFunction &K, DiagnosticsEngine &Diags,
                                const SanitizeOptions &Opt,
                                const std::string &Context, bool Final,
                                SanitizeSummary *Summary) {
  auto Prefixed = [&](const std::string &Msg) {
    return Context.empty() ? Msg : "[" + Context + "] " + Msg;
  };
  if (Summary)
    ++Summary->KernelsChecked;

  RaceReport Report;
  if (Opt.Races) {
    Report = detectSharedRaces(K, Opt.RaceOpts);
    for (const RaceFinding &F : Report.Findings) {
      Diags.error(F.Loc1, Prefixed(strFormat("kernel '%s': %s",
                                             K.name().c_str(),
                                             F.str().c_str())));
      if (F.Loc2.isValid() && !(F.Loc2 == F.Loc1))
        Diags.note(F.Loc2, "conflicting access is here");
      if (Summary)
        ++Summary->RaceErrors;
    }
    if (!Report.Analyzable) {
      if (Summary)
        ++Summary->Unanalyzable;
      if (Opt.WarnUnanalyzable) {
        Diags.warning(
            SourceLocation(),
            Prefixed(strFormat("kernel '%s': race-freedom not proved",
                               K.name().c_str())));
        for (const std::string &Note : Report.Notes)
          Diags.note(SourceLocation(), Note);
      }
    } else if (Opt.WarnUnanalyzable && !Report.Notes.empty()) {
      // Analyzable overall, but some accesses were skipped (non-affine
      // subscripts, capped enumeration): the verdict has caveats.
      Diags.warning(
          SourceLocation(),
          Prefixed(strFormat("kernel '%s': race analysis incomplete",
                             K.name().c_str())));
      for (const std::string &Note : Report.Notes)
        Diags.note(SourceLocation(), Note);
    }
  }

  if (Opt.Lint) {
    LintOptions LO = Opt.LintOpts;
    LO.Context = Context;
    // Naive and mid-pipeline kernels are legitimately non-coalesced; the
    // lint's claim is "survived compilation", so final kernels only.
    LO.Coalescing = Opt.LintOpts.Coalescing && Final;
    int Warnings = lintKernel(K, Diags, LO);
    if (Summary)
      Summary->LintWarnings += Warnings;
  }
  return Report;
}

void gpuc::attachStageSanitizer(CompileOptions &CO, DiagnosticsEngine &Diags,
                                const SanitizeOptions &Opt,
                                SanitizeSummary *Summary) {
  (void)Diags; // task hooks bind the per-task engine the factory receives
  // Copy Opt by value: the hooks outlive the caller's options object. The
  // summary is shared across search tasks; a mutex keeps its counters
  // exact (sums are order-independent, so the totals are deterministic).
  auto Mutex = std::make_shared<std::mutex>();
  CO.HookFactory = [Opt, Summary, Mutex](DiagnosticsEngine &TaskDiags) {
    return [&TaskDiags, Opt, Summary, Mutex](const char *Stage,
                                             KernelFunction &K, bool Final) {
      // "final" is itself a stage name; avoid "after final, final".
      std::string Context = strFormat(
          "after %s%s", Stage,
          Final && std::string(Stage) != "final" ? ", final" : "");
      SanitizeSummary Local;
      sanitizeKernel(K, TaskDiags, Opt, Context, Final,
                     Summary ? &Local : nullptr);
      if (Summary) {
        std::lock_guard<std::mutex> Lock(*Mutex);
        Summary->KernelsChecked += Local.KernelsChecked;
        Summary->RaceErrors += Local.RaceErrors;
        Summary->LintWarnings += Local.LintWarnings;
        Summary->Unanalyzable += Local.Unanalyzable;
      }
    };
  };
}

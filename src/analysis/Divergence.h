//===-- analysis/Divergence.h - Thread-divergence lattice -------*- C++ -*-===//
//
// Part of the gpuc project: a reproduction of "A GPGPU Compiler for Memory
// Optimization and Parallelism Management" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three-point divergence lattice of the abstract-interpretation
/// engine: every expression is classified as provably uniform across the
/// threads of a block, possibly tid-dependent, or unknown (data-dependent
/// through memory). The same lattice is reused along the block axis, where
/// the middle element means "may depend on the block id" — that is what
/// __globalSync legality cares about.
///
/// The classification is a may-analysis: Uniform is a proof, TidDependent
/// and Unknown are over-approximations (tidx - tidx joins to TidDependent
/// even though it is uniform). Proofs of *actual* divergence — needed for
/// Violation verdicts — come from the affine range layer (Dataflow.cpp's
/// straddle test), never from this join.
///
//===----------------------------------------------------------------------===//

#ifndef GPUC_ANALYSIS_DIVERGENCE_H
#define GPUC_ANALYSIS_DIVERGENCE_H

#include "ast/Kernel.h"

#include <map>
#include <string>

namespace gpuc {

/// Ordered Uniform < TidDependent < Unknown; join is max.
enum class Divergence { Uniform, TidDependent, Unknown };

/// "uniform" / "tid-dependent" / "unknown".
const char *divergenceName(Divergence D);

Divergence joinDiv(Divergence A, Divergence B);

/// Divergence along both grid axes: Thread says whether the value may
/// differ between threads of one block, Block whether it may differ
/// between blocks.
struct DivFact {
  Divergence Thread = Divergence::Uniform;
  Divergence Block = Divergence::Uniform;

  bool uniform() const {
    return Thread == Divergence::Uniform && Block == Divergence::Uniform;
  }
  bool operator==(const DivFact &O) const {
    return Thread == O.Thread && Block == O.Block;
  }
};

DivFact joinDiv(const DivFact &A, const DivFact &B);

/// Per-variable divergence environment for divergenceOf. Scalar parameters
/// are launch-wide constants (uniform on both axes) and need no entry;
/// a local without an entry is treated as Unknown.
struct DivEnv {
  std::map<std::string, DivFact> Vars;
};

/// Structural may-divergence of \p E under \p Env: the join over its
/// leaves. Loaded array elements are Unknown on both axes (another thread
/// may have written them).
DivFact divergenceOf(const Expr *E, const KernelFunction &K,
                     const DivEnv &Env);

} // namespace gpuc

#endif // GPUC_ANALYSIS_DIVERGENCE_H
